(* Lightweight span tracer: [with_span] brackets a computation with a
   clamped-monotonic clock, records completed spans into a fixed-size
   ring buffer, and exports them as chrome-trace JSON (load the file in
   chrome://tracing or https://ui.perfetto.dev).

   Disabled (the default), [with_span] is a single ref load + branch and
   a direct call — no allocation, no clock read. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since the trace epoch *)
  dur_us : float;
  depth : int;  (** nesting depth at the time the span was open *)
  instant : bool;  (** a point event, not a bracketed span *)
}

(* --- clock --------------------------------------------------------- *)

(* OCaml's stdlib has no monotonic clock; clamp gettimeofday so nested
   span arithmetic stays well-ordered even if the wall clock steps
   backwards. *)
let last_us = ref 0.0

let now_us () =
  let t = Unix.gettimeofday () *. 1e6 in
  if t > !last_us then last_us := t;
  !last_us

let epoch_us = now_us ()

(* --- ring-buffer sink ---------------------------------------------- *)

let default_capacity = 8192

let capacity = ref default_capacity

let ring : span option array ref = ref [||]

let write_pos = ref 0

let recorded = ref 0 (* total spans ever recorded, including overwritten *)

let depth = ref 0

let ensure_ring () =
  if Array.length !ring <> !capacity then begin
    ring := Array.make !capacity None;
    write_pos := 0;
    recorded := 0
  end

let set_capacity n =
  capacity := max 1 n;
  ring := [||] (* reallocated lazily at the next record *)

let clear () =
  ring := [||];
  write_pos := 0;
  recorded := 0;
  depth := 0

let record (s : span) =
  ensure_ring ();
  !ring.(!write_pos) <- Some s;
  write_pos := (!write_pos + 1) mod !capacity;
  incr recorded

(** Completed spans, oldest first (at most [capacity], older ones are
    overwritten). *)
let spans () : span list =
  let cap = Array.length !ring in
  if cap = 0 then []
  else begin
    let out = ref [] in
    for i = 0 to cap - 1 do
      (* walk backwards from the newest entry *)
      let idx = ((!write_pos - 1 - i) mod cap + cap) mod cap in
      match !ring.(idx) with Some s -> out := s :: !out | None -> ()
    done;
    !out
  end

let dropped () = max 0 (!recorded - Array.length !ring)

(* --- spans --------------------------------------------------------- *)

let with_span ?(attrs = []) ~name (f : unit -> 'a) : 'a =
  if not !Control.enabled then f ()
  else begin
    let t0 = now_us () in
    let d = !depth in
    incr depth;
    let finish () =
      decr depth;
      let t1 = now_us () in
      record
        { name; attrs; start_us = t0 -. epoch_us; dur_us = t1 -. t0; depth = d;
          instant = false }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(** Record an instantaneous event (chrome-trace "instant"). *)
let event ?(attrs = []) name =
  if !Control.enabled then
    record
      { name; attrs; start_us = now_us () -. epoch_us; dur_us = 0.0; depth = !depth;
        instant = true }

(* --- export -------------------------------------------------------- *)

let span_to_json (s : span) : Json.t =
  let args =
    Json.Obj
      (("depth", Json.Num (float_of_int s.depth))
      :: List.map (fun (k, v) -> (k, Json.Str v)) s.attrs)
  in
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("cat", Json.Str "xquec");
      ("ph", Json.Str (if s.instant then "i" else "X"));
      ("ts", Json.Num s.start_us);
      ("dur", Json.Num s.dur_us);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num 1.0);
      ("args", args);
    ]

(** The whole buffer in chrome-trace format. *)
let to_chrome_json () : string =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map span_to_json (spans ())));
         ("displayTimeUnit", Json.Str "ms");
       ])

let export (path : string) : unit =
  let oc = open_out_bin path in
  output_string oc (to_chrome_json ());
  close_out oc
