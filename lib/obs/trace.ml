(* Lightweight span tracer: [with_span] brackets a computation with a
   clamped-monotonic clock, records completed spans into per-domain
   fixed-size ring buffers, and exports them all as chrome-trace JSON
   (load the file in chrome://tracing or https://ui.perfetto.dev, where
   every domain appears as its own thread track).

   Disabled (the default), [with_span] is a single ref load + branch and
   a direct call — no allocation, no clock read.

   Concurrency model (see docs/CONCURRENCY.md): every domain owns a
   private sink (ring buffer + nesting depth + clock clamp) reached
   through domain-local storage, so the recording hot path takes no lock
   and touches no shared mutable state. A process-wide registry of sinks
   (one mutex, locked only when a domain records its first span and by
   the read/maintenance entry points) lets [spans] / [to_chrome_json] /
   [clear] / [set_capacity] see every domain's buffer. Read and
   maintenance calls assume the worker domains are quiescent — in this
   engine they run between [Domain_pool] batches, whose completion latch
   publishes the workers' writes. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since the trace epoch *)
  dur_us : float;
  depth : int;  (** nesting depth at the time the span was open *)
  tid : int;  (** id of the domain that recorded the span *)
  instant : bool;  (** a point event, not a bracketed span *)
}

(* --- clock --------------------------------------------------------- *)

(* OCaml's stdlib has no monotonic clock; clamp gettimeofday so nested
   span arithmetic stays well-ordered even if the wall clock steps
   backwards. The clamp is domain-local: cross-domain ordering is only
   used for display, where a microsecond-level skew is harmless. *)
let clamp_key : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.0)

let now_us () =
  let last = Domain.DLS.get clamp_key in
  let t = Unix.gettimeofday () *. 1e6 in
  if t > !last then last := t;
  !last

let epoch_us = now_us ()

(* --- per-domain ring-buffer sinks ---------------------------------- *)

let default_capacity = 8192

let capacity = ref default_capacity

type sink = {
  s_tid : int;  (* (Domain.self () :> int) of the owning domain *)
  s_label : string;  (* thread name shown in the chrome-trace export *)
  mutable ring : span option array;
  mutable write_pos : int;
  mutable recorded : int;  (* total spans ever recorded, incl. overwritten *)
  mutable depth : int;
}

(* Registry of every sink ever created, in registration order (the main
   domain first: its sink is created at module initialization).
   [registry_mutex] guards the list itself; each sink's fields are only
   written by its owning domain. *)
let registry_mutex = Mutex.create ()

let sinks : sink list ref = ref []

let new_sink () =
  let tid = (Domain.self () :> int) in
  Mutex.lock registry_mutex;
  let label = if !sinks = [] then "main" else Printf.sprintf "domain-%d" tid in
  let s = { s_tid = tid; s_label = label; ring = [||]; write_pos = 0; recorded = 0; depth = 0 } in
  sinks := !sinks @ [ s ];
  Mutex.unlock registry_mutex;
  s

let sink_key : sink Domain.DLS.key = Domain.DLS.new_key new_sink

(* The module initializes on the main domain: register its sink first so
   single-domain span order (and the "main" label) is deterministic. *)
let main_sink = Domain.DLS.get sink_key

let () = ignore main_sink

let my_sink () = Domain.DLS.get sink_key

let ensure_ring (s : sink) =
  if Array.length s.ring <> !capacity then begin
    s.ring <- Array.make !capacity None;
    s.write_pos <- 0;
    s.recorded <- 0
  end

let with_registry f =
  Mutex.lock registry_mutex;
  match f !sinks with
  | v ->
    Mutex.unlock registry_mutex;
    v
  | exception e ->
    Mutex.unlock registry_mutex;
    raise e

let set_capacity n =
  capacity := max 1 n;
  (* rings are reallocated lazily at each sink's next record *)
  with_registry (List.iter (fun s ->
      s.ring <- [||];
      s.write_pos <- 0;
      s.recorded <- 0))

let clear () =
  with_registry (List.iter (fun s ->
      s.ring <- [||];
      s.write_pos <- 0;
      s.recorded <- 0;
      s.depth <- 0))

let record (s : sink) (sp : span) =
  ensure_ring s;
  s.ring.(s.write_pos) <- Some sp;
  s.write_pos <- (s.write_pos + 1) mod !capacity;
  s.recorded <- s.recorded + 1

(* Completed spans of one sink, oldest first. *)
let sink_spans (s : sink) : span list =
  let cap = Array.length s.ring in
  if cap = 0 then []
  else begin
    let out = ref [] in
    for i = 0 to cap - 1 do
      (* walk backwards from the newest entry *)
      let idx = ((s.write_pos - 1 - i) mod cap + cap) mod cap in
      match s.ring.(idx) with Some sp -> out := sp :: !out | None -> ()
    done;
    !out
  end

(** Completed spans of every domain: the registering domain's spans
    first (main, then workers in first-span order), each oldest first. *)
let spans () : span list =
  with_registry (fun ss -> List.concat_map sink_spans ss)

let dropped () =
  with_registry
    (List.fold_left (fun acc s -> acc + max 0 (s.recorded - Array.length s.ring)) 0)

(* --- spans --------------------------------------------------------- *)

let with_span ?(attrs = []) ~name (f : unit -> 'a) : 'a =
  if not !Control.enabled then f ()
  else begin
    let s = my_sink () in
    let t0 = now_us () in
    let d = s.depth in
    s.depth <- d + 1;
    let finish () =
      s.depth <- s.depth - 1;
      let t1 = now_us () in
      record s
        { name; attrs; start_us = t0 -. epoch_us; dur_us = t1 -. t0; depth = d;
          tid = s.s_tid; instant = false }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(** Record an instantaneous event (chrome-trace "instant"). *)
let event ?(attrs = []) name =
  if !Control.enabled then begin
    let s = my_sink () in
    record s
      { name; attrs; start_us = now_us () -. epoch_us; dur_us = 0.0; depth = s.depth;
        tid = s.s_tid; instant = true }
  end

(** Record a span whose endpoints were measured by the caller (clock
    values from {!now_us}) — used for queue-wait spans, whose start is
    stamped by the submitting domain and whose end by the executing
    one. *)
let add_span ?(attrs = []) ~name ~(start_us : float) ~(end_us : float) () : unit =
  if !Control.enabled then begin
    let s = my_sink () in
    record s
      { name; attrs; start_us = start_us -. epoch_us;
        dur_us = Float.max 0.0 (end_us -. start_us); depth = s.depth; tid = s.s_tid;
        instant = false }
  end

(* --- export -------------------------------------------------------- *)

let span_to_json (s : span) : Json.t =
  let args =
    Json.Obj
      (("depth", Json.Num (float_of_int s.depth))
      :: List.map (fun (k, v) -> (k, Json.Str v)) s.attrs)
  in
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("cat", Json.Str "xquec");
      ("ph", Json.Str (if s.instant then "i" else "X"));
      ("ts", Json.Num s.start_us);
      ("dur", Json.Num s.dur_us);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int s.tid));
      ("args", args);
    ]

(* One chrome-trace "M" (metadata) event naming a thread track. *)
let thread_name_json (tid : int) (label : string) : Json.t =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("name", Json.Str label) ]);
    ]

(** Every domain's buffer in chrome-trace format, with thread-name
    metadata so Perfetto labels the main domain and each worker. *)
let to_chrome_json () : string =
  let names =
    with_registry (fun ss -> List.map (fun s -> thread_name_json s.s_tid s.s_label) ss)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (names @ List.map span_to_json (spans ())));
         ("displayTimeUnit", Json.Str "ms");
       ])

let export (path : string) : unit =
  let oc = open_out_bin path in
  output_string oc (to_chrome_json ());
  close_out oc
