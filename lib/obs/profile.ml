(* Workload fingerprinting over the JSONL query log. See profile.mli.

   Everything here is pure aggregation over already-parsed Json values;
   the only IO is [load_jsonl]. Determinism matters (the bench gate
   compares drift scores with tight tolerance), so every list is
   explicitly sorted and weights are plain ratios of integer counts. *)

type cstat = {
  c_container : string;
  c_eq : int;
  c_range : int;
  c_wild : int;
  c_exists : int;
  c_join : int;
  c_candidates : int;
  c_matches : int;
  c_queries : int;
  c_decoded_bytes : int;
}

type fingerprint = {
  records : int;
  weights : ((string * string) * float) list;
  containers : cstat list;
}

let selectivity c =
  if c.c_candidates > 0 then Some (float_of_int c.c_matches /. float_of_int c.c_candidates)
  else None

let load_jsonl path =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.parse line with
         | v -> out := v :: !out
         | exception Json.Parse_error _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !out

(* ---- record field access ---- *)

let str_field name obj = Option.bind (Json.member name obj) Json.to_str
let num_field name obj = Option.bind (Json.member name obj) Json.to_float
let int_field name obj = Option.map int_of_float (num_field name obj)
let list_field name obj = Option.value ~default:[] (Option.bind (Json.member name obj) Json.to_list)

module Smap = Map.Make (String)

module Kmap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

let empty_cstat container =
  {
    c_container = container;
    c_eq = 0;
    c_range = 0;
    c_wild = 0;
    c_exists = 0;
    c_join = 0;
    c_candidates = 0;
    c_matches = 0;
    c_queries = 0;
    c_decoded_bytes = 0;
  }

(* ---- incremental aggregation ---- *)

(* The one place fingerprint semantics live: the offline [of_records]
   path and the streaming watchdog ([Watch]) both feed queries through
   an [agg], so the two can never drift apart — the parity test in
   test_watch.ml holds by construction. *)

type obs = { ob_container : string; ob_kind : string; ob_candidates : int; ob_matches : int }

type agg = {
  mutable g_records : int;
  mutable g_pred_events : int;
  g_events : (string * string, int) Hashtbl.t;
  g_stats : (string, cstat) Hashtbl.t;
}

let agg_create () : agg =
  { g_records = 0; g_pred_events = 0; g_events = Hashtbl.create 16; g_stats = Hashtbl.create 16 }

let agg_records (g : agg) : int = g.g_records

let bump_event (g : agg) key by =
  Hashtbl.replace g.g_events key (by + Option.value ~default:0 (Hashtbl.find_opt g.g_events key))

let upd_stat (g : agg) container f =
  let cur =
    match Hashtbl.find_opt g.g_stats container with
    | Some c -> c
    | None -> empty_cstat container
  in
  Hashtbl.replace g.g_stats container (f cur)

let agg_add (g : agg) ~(predicates : obs list) ~(containers : (string * int) list) : unit =
  g.g_records <- g.g_records + 1;
  List.iter
    (fun o ->
      g.g_pred_events <- g.g_pred_events + 1;
      bump_event g (o.ob_container, o.ob_kind) 1;
      upd_stat g o.ob_container (fun c ->
          {
            c with
            c_eq = (c.c_eq + if o.ob_kind = "eq" then 1 else 0);
            c_range = (c.c_range + if o.ob_kind = "range" then 1 else 0);
            c_wild = (c.c_wild + if o.ob_kind = "wild" then 1 else 0);
            c_exists = (c.c_exists + if o.ob_kind = "exists" then 1 else 0);
            c_join = (c.c_join + if o.ob_kind = "join" then 1 else 0);
            c_candidates = c.c_candidates + o.ob_candidates;
            c_matches = c.c_matches + o.ob_matches;
          }))
    predicates;
  List.iter
    (fun (container, bytes) ->
      upd_stat g container (fun c ->
          { c with c_queries = c.c_queries + 1; c_decoded_bytes = c.c_decoded_bytes + bytes }))
    containers

let agg_merge ~(into : agg) (src : agg) : unit =
  into.g_records <- into.g_records + src.g_records;
  into.g_pred_events <- into.g_pred_events + src.g_pred_events;
  Hashtbl.iter (fun k n -> bump_event into k n) src.g_events;
  Hashtbl.iter
    (fun container (s : cstat) ->
      upd_stat into container (fun c ->
          {
            c with
            c_eq = c.c_eq + s.c_eq;
            c_range = c.c_range + s.c_range;
            c_wild = c.c_wild + s.c_wild;
            c_exists = c.c_exists + s.c_exists;
            c_join = c.c_join + s.c_join;
            c_candidates = c.c_candidates + s.c_candidates;
            c_matches = c.c_matches + s.c_matches;
            c_queries = c.c_queries + s.c_queries;
            c_decoded_bytes = c.c_decoded_bytes + s.c_decoded_bytes;
          }))
    src.g_stats

let agg_fingerprint (g : agg) : fingerprint =
  let stats =
    Hashtbl.fold (fun container c m -> Smap.add container c m) g.g_stats Smap.empty
  in
  let events =
    if g.g_pred_events > 0 then
      Hashtbl.fold (fun k n m -> Kmap.add k n m) g.g_events Kmap.empty
    else
      (* no pushed predicates anywhere: fall back to container-touch
         events so a navigation-only workload still fingerprints *)
      Smap.fold
        (fun container c m ->
          if c.c_queries > 0 then Kmap.add (container, "touch") c.c_queries m else m)
        stats Kmap.empty
  in
  let total = Kmap.fold (fun _ n acc -> acc + n) events 0 in
  let weights =
    if total = 0 then []
    else Kmap.bindings events |> List.map (fun (k, n) -> (k, float_of_int n /. float_of_int total))
  in
  { records = g.g_records; weights; containers = List.map snd (Smap.bindings stats) }

(* Decompose one parsed query-log record into the aggregator's
   vocabulary: entries without a container field are dropped, exactly
   as the previous monolithic aggregation did. *)
let record_observations (record : Json.t) : obs list * (string * int) list =
  let predicates =
    List.filter_map
      (fun p ->
        match str_field "container" p with
        | None -> None
        | Some container ->
          Some
            {
              ob_container = container;
              ob_kind = Option.value ~default:"eq" (str_field "kind" p);
              ob_candidates = Option.value ~default:0 (int_field "candidates" p);
              ob_matches = Option.value ~default:0 (int_field "matches" p);
            })
      (list_field "predicates" record)
  in
  let containers =
    List.filter_map
      (fun t ->
        match str_field "container" t with
        | None -> None
        | Some container ->
          Some (container, Option.value ~default:0 (int_field "decoded_bytes" t)))
      (list_field "containers" record)
  in
  (predicates, containers)

let of_records records =
  let g = agg_create () in
  List.iter
    (fun record ->
      let predicates, containers = record_observations record in
      agg_add g ~predicates ~containers)
    records;
  agg_fingerprint g

let of_weighted_events events =
  let merged =
    List.fold_left
      (fun m (k, w) -> if w > 0.0 then Kmap.update k (fun v -> Some (Option.value ~default:0.0 v +. w)) m else m)
      Kmap.empty events
  in
  let total = Kmap.fold (fun _ w acc -> acc +. w) merged 0.0 in
  let weights =
    if total <= 0.0 then [] else Kmap.bindings merged |> List.map (fun (k, w) -> (k, w /. total))
  in
  { records = 0; weights; containers = [] }

let drift a b =
  let m =
    List.fold_left (fun m (k, w) -> Kmap.add k (w, 0.0) m) Kmap.empty a.weights
  in
  let m =
    List.fold_left
      (fun m (k, w) ->
        Kmap.update k (function Some (wa, _) -> Some (wa, w) | None -> Some (0.0, w)) m)
      m b.weights
  in
  0.5 *. Kmap.fold (fun _ (wa, wb) acc -> acc +. Float.abs (wa -. wb)) m 0.0

(* ---- recommendations ---- *)

type recommendation = { r_container : string; r_action : string; r_factor : float; r_reason : string }

(* pull (seq_frac, header_skips, decodes) per container out of a
   Heat.snapshot_json value *)
let heat_access heat =
  match Option.bind (Json.member "containers" heat) Json.to_list with
  | None -> Smap.empty
  | Some conts ->
    List.fold_left
      (fun m c ->
        match str_field "container" c with
        | None -> m
        | Some path ->
          let f name = Option.value ~default:0 (int_field name c) in
          let seq = f "seq_touches" and runs = f "runs" in
          let seq_frac =
            if seq + runs > 0 then float_of_int seq /. float_of_int (seq + runs) else 0.0
          in
          Smap.add path (seq_frac, f "header_skips", f "decodes") m)
      Smap.empty conts

let recommend ?heat fp =
  let access = match heat with Some h -> heat_access h | None -> Smap.empty in
  List.map
    (fun c ->
      let pushed = c.c_eq + c.c_range + c.c_wild + c.c_exists + c.c_join in
      let sel = selectivity c in
      let acc = Smap.find_opt c.c_container access in
      let keep reason = { r_container = c.c_container; r_action = "keep"; r_factor = 1.0; r_reason = reason } in
      match (sel, acc) with
      | Some s, _ when pushed > 0 && s < 0.05 && (match acc with Some (sf, _, _) -> sf < 0.5 | None -> true) ->
        {
          r_container = c.c_container;
          r_action = "shrink";
          r_factor = 0.25;
          r_reason =
            Printf.sprintf "selective point access (selectivity %.3f); smaller blocks sharpen header pruning" s;
        }
      | _, Some (sf, skips, decodes) when sf >= 0.9 && skips < decodes ->
        {
          r_container = c.c_container;
          r_action = "grow";
          r_factor = 4.0;
          r_reason =
            Printf.sprintf "scan-dominated access (%.0f%% sequential, little pruning); larger blocks amortize headers"
              (100.0 *. sf);
        }
      | Some _, _ -> keep "mixed access; current block size is a reasonable compromise"
      | None, _ -> keep "no pushed predicates observed; nothing to optimize against")
    fp.containers

(* Parse the "recommendations" array of a report back into actionable
   (path, factor) pairs — the consumer side of report_json, used by
   `xquec compress --blocks-from` and `xquec compact --profile`. *)
let recommendations_of_report (report : Json.t) : (string * float) list =
  match Option.bind (Json.member "recommendations" report) Json.to_list with
  | None -> []
  | Some recs ->
    List.filter_map
      (fun r ->
        match (str_field "container" r, str_field "action" r) with
        | Some path, Some action when action <> "keep" ->
          (match Option.bind (Json.member "factor" r) Json.to_float with
          | Some f when f > 0.0 -> Some (path, f)
          | _ -> None)
        | _ -> None)
      recs

(* ---- reports ---- *)

let num n = Json.Num (float_of_int n)

let cstat_json c =
  Json.Obj
    [
      ("container", Json.Str c.c_container);
      ("eq", num c.c_eq);
      ("range", num c.c_range);
      ("wild", num c.c_wild);
      ("exists", num c.c_exists);
      ("join", num c.c_join);
      ("candidates", num c.c_candidates);
      ("matches", num c.c_matches);
      ("selectivity", match selectivity c with Some s -> Json.Num s | None -> Json.Null);
      ("queries", num c.c_queries);
      ("decoded_bytes", num c.c_decoded_bytes);
    ]

let report_json ?baseline ?heat fp =
  let weights =
    List.map
      (fun ((container, kind), w) ->
        Json.Obj [ ("container", Json.Str container); ("kind", Json.Str kind); ("weight", Json.Num w) ])
      fp.weights
  in
  let recs =
    List.map
      (fun r ->
        Json.Obj
          [
            ("container", Json.Str r.r_container);
            ("action", Json.Str r.r_action);
            ("factor", Json.Num r.r_factor);
            ("reason", Json.Str r.r_reason);
          ])
      (recommend ?heat fp)
  in
  Json.Obj
    ([ ("records", num fp.records); ("weights", Json.List weights) ]
    @ (match baseline with Some b -> [ ("drift", Json.Num (drift b fp)) ] | None -> [])
    @ [
        ("containers", Json.List (List.map cstat_json fp.containers));
        ("recommendations", Json.List recs);
      ])

let render ?baseline ?heat fp =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "workload fingerprint over %d query-log records\n" fp.records);
  (match baseline with
  | Some base -> Buffer.add_string b (Printf.sprintf "drift vs baseline: %.4f\n" (drift base fp))
  | None -> ());
  let width =
    List.fold_left (fun acc c -> max acc (String.length c.c_container)) (String.length "container") fp.containers
  in
  Buffer.add_string b
    (Printf.sprintf "%-*s %5s %5s %5s %6s %5s %11s %11s %7s %12s\n" width "container" "eq" "range" "wild"
       "exists" "join" "candidates" "matches" "sel" "decoded_b");
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%-*s %5d %5d %5d %6d %5d %11d %11d %7s %12d\n" width c.c_container c.c_eq c.c_range
           c.c_wild c.c_exists c.c_join c.c_candidates c.c_matches
           (match selectivity c with Some s -> Printf.sprintf "%.3f" s | None -> "-")
           c.c_decoded_bytes))
    fp.containers;
  Buffer.add_string b "\nblock-size recommendations:\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-*s %-6s x%-4g %s\n" width r.r_container r.r_action r.r_factor r.r_reason))
    (recommend ?heat fp);
  Buffer.contents b
