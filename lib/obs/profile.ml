(* Workload fingerprinting over the JSONL query log. See profile.mli.

   Everything here is pure aggregation over already-parsed Json values;
   the only IO is [load_jsonl]. Determinism matters (the bench gate
   compares drift scores with tight tolerance), so every list is
   explicitly sorted and weights are plain ratios of integer counts. *)

type cstat = {
  c_container : string;
  c_eq : int;
  c_range : int;
  c_wild : int;
  c_exists : int;
  c_join : int;
  c_candidates : int;
  c_matches : int;
  c_queries : int;
  c_decoded_bytes : int;
}

type fingerprint = {
  records : int;
  weights : ((string * string) * float) list;
  containers : cstat list;
}

let selectivity c =
  if c.c_candidates > 0 then Some (float_of_int c.c_matches /. float_of_int c.c_candidates)
  else None

let load_jsonl path =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.parse line with
         | v -> out := v :: !out
         | exception Json.Parse_error _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !out

(* ---- record field access ---- *)

let str_field name obj = Option.bind (Json.member name obj) Json.to_str
let num_field name obj = Option.bind (Json.member name obj) Json.to_float
let int_field name obj = Option.map int_of_float (num_field name obj)
let list_field name obj = Option.value ~default:[] (Option.bind (Json.member name obj) Json.to_list)

module Smap = Map.Make (String)

module Kmap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

let empty_cstat container =
  {
    c_container = container;
    c_eq = 0;
    c_range = 0;
    c_wild = 0;
    c_exists = 0;
    c_join = 0;
    c_candidates = 0;
    c_matches = 0;
    c_queries = 0;
    c_decoded_bytes = 0;
  }

let of_records records =
  let stats = ref Smap.empty in
  let events = ref Kmap.empty in
  let upd container f =
    let cur = match Smap.find_opt container !stats with Some c -> c | None -> empty_cstat container in
    stats := Smap.add container (f cur) !stats
  in
  let bump_event key by = events := Kmap.update key (fun v -> Some (Option.value ~default:0 v + by)) !events in
  let pred_events = ref 0 in
  List.iter
    (fun record ->
      List.iter
        (fun p ->
          match str_field "container" p with
          | None -> ()
          | Some container ->
            let kind = Option.value ~default:"eq" (str_field "kind" p) in
            let cand = Option.value ~default:0 (int_field "candidates" p) in
            let matches = Option.value ~default:0 (int_field "matches" p) in
            incr pred_events;
            bump_event (container, kind) 1;
            upd container (fun c ->
                {
                  c with
                  c_eq = (c.c_eq + if kind = "eq" then 1 else 0);
                  c_range = (c.c_range + if kind = "range" then 1 else 0);
                  c_wild = (c.c_wild + if kind = "wild" then 1 else 0);
                  c_exists = (c.c_exists + if kind = "exists" then 1 else 0);
                  c_join = (c.c_join + if kind = "join" then 1 else 0);
                  c_candidates = c.c_candidates + cand;
                  c_matches = c.c_matches + matches;
                }))
        (list_field "predicates" record);
      List.iter
        (fun t ->
          match str_field "container" t with
          | None -> ()
          | Some container ->
            let bytes = Option.value ~default:0 (int_field "decoded_bytes" t) in
            upd container (fun c ->
                { c with c_queries = c.c_queries + 1; c_decoded_bytes = c.c_decoded_bytes + bytes }))
        (list_field "containers" record))
    records;
  (* no pushed predicates anywhere: fall back to container-touch events
     so a navigation-only workload still fingerprints *)
  if !pred_events = 0 then
    Smap.iter (fun container c -> if c.c_queries > 0 then bump_event (container, "touch") c.c_queries) !stats;
  let total = Kmap.fold (fun _ n acc -> acc + n) !events 0 in
  let weights =
    if total = 0 then []
    else
      Kmap.bindings !events
      |> List.map (fun (k, n) -> (k, float_of_int n /. float_of_int total))
  in
  {
    records = List.length records;
    weights;
    containers = List.map snd (Smap.bindings !stats);
  }

let of_weighted_events events =
  let merged =
    List.fold_left
      (fun m (k, w) -> if w > 0.0 then Kmap.update k (fun v -> Some (Option.value ~default:0.0 v +. w)) m else m)
      Kmap.empty events
  in
  let total = Kmap.fold (fun _ w acc -> acc +. w) merged 0.0 in
  let weights =
    if total <= 0.0 then [] else Kmap.bindings merged |> List.map (fun (k, w) -> (k, w /. total))
  in
  { records = 0; weights; containers = [] }

let drift a b =
  let m =
    List.fold_left (fun m (k, w) -> Kmap.add k (w, 0.0) m) Kmap.empty a.weights
  in
  let m =
    List.fold_left
      (fun m (k, w) ->
        Kmap.update k (function Some (wa, _) -> Some (wa, w) | None -> Some (0.0, w)) m)
      m b.weights
  in
  0.5 *. Kmap.fold (fun _ (wa, wb) acc -> acc +. Float.abs (wa -. wb)) m 0.0

(* ---- recommendations ---- *)

type recommendation = { r_container : string; r_action : string; r_factor : float; r_reason : string }

(* pull (seq_frac, header_skips, decodes) per container out of a
   Heat.snapshot_json value *)
let heat_access heat =
  match Option.bind (Json.member "containers" heat) Json.to_list with
  | None -> Smap.empty
  | Some conts ->
    List.fold_left
      (fun m c ->
        match str_field "container" c with
        | None -> m
        | Some path ->
          let f name = Option.value ~default:0 (int_field name c) in
          let seq = f "seq_touches" and runs = f "runs" in
          let seq_frac =
            if seq + runs > 0 then float_of_int seq /. float_of_int (seq + runs) else 0.0
          in
          Smap.add path (seq_frac, f "header_skips", f "decodes") m)
      Smap.empty conts

let recommend ?heat fp =
  let access = match heat with Some h -> heat_access h | None -> Smap.empty in
  List.map
    (fun c ->
      let pushed = c.c_eq + c.c_range + c.c_wild + c.c_exists + c.c_join in
      let sel = selectivity c in
      let acc = Smap.find_opt c.c_container access in
      let keep reason = { r_container = c.c_container; r_action = "keep"; r_factor = 1.0; r_reason = reason } in
      match (sel, acc) with
      | Some s, _ when pushed > 0 && s < 0.05 && (match acc with Some (sf, _, _) -> sf < 0.5 | None -> true) ->
        {
          r_container = c.c_container;
          r_action = "shrink";
          r_factor = 0.25;
          r_reason =
            Printf.sprintf "selective point access (selectivity %.3f); smaller blocks sharpen header pruning" s;
        }
      | _, Some (sf, skips, decodes) when sf >= 0.9 && skips < decodes ->
        {
          r_container = c.c_container;
          r_action = "grow";
          r_factor = 4.0;
          r_reason =
            Printf.sprintf "scan-dominated access (%.0f%% sequential, little pruning); larger blocks amortize headers"
              (100.0 *. sf);
        }
      | Some _, _ -> keep "mixed access; current block size is a reasonable compromise"
      | None, _ -> keep "no pushed predicates observed; nothing to optimize against")
    fp.containers

(* ---- reports ---- *)

let num n = Json.Num (float_of_int n)

let cstat_json c =
  Json.Obj
    [
      ("container", Json.Str c.c_container);
      ("eq", num c.c_eq);
      ("range", num c.c_range);
      ("wild", num c.c_wild);
      ("exists", num c.c_exists);
      ("join", num c.c_join);
      ("candidates", num c.c_candidates);
      ("matches", num c.c_matches);
      ("selectivity", match selectivity c with Some s -> Json.Num s | None -> Json.Null);
      ("queries", num c.c_queries);
      ("decoded_bytes", num c.c_decoded_bytes);
    ]

let report_json ?baseline ?heat fp =
  let weights =
    List.map
      (fun ((container, kind), w) ->
        Json.Obj [ ("container", Json.Str container); ("kind", Json.Str kind); ("weight", Json.Num w) ])
      fp.weights
  in
  let recs =
    List.map
      (fun r ->
        Json.Obj
          [
            ("container", Json.Str r.r_container);
            ("action", Json.Str r.r_action);
            ("factor", Json.Num r.r_factor);
            ("reason", Json.Str r.r_reason);
          ])
      (recommend ?heat fp)
  in
  Json.Obj
    ([ ("records", num fp.records); ("weights", Json.List weights) ]
    @ (match baseline with Some b -> [ ("drift", Json.Num (drift b fp)) ] | None -> [])
    @ [
        ("containers", Json.List (List.map cstat_json fp.containers));
        ("recommendations", Json.List recs);
      ])

let render ?baseline ?heat fp =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "workload fingerprint over %d query-log records\n" fp.records);
  (match baseline with
  | Some base -> Buffer.add_string b (Printf.sprintf "drift vs baseline: %.4f\n" (drift base fp))
  | None -> ());
  let width =
    List.fold_left (fun acc c -> max acc (String.length c.c_container)) (String.length "container") fp.containers
  in
  Buffer.add_string b
    (Printf.sprintf "%-*s %5s %5s %5s %6s %5s %11s %11s %7s %12s\n" width "container" "eq" "range" "wild"
       "exists" "join" "candidates" "matches" "sel" "decoded_b");
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%-*s %5d %5d %5d %6d %5d %11d %11d %7s %12d\n" width c.c_container c.c_eq c.c_range
           c.c_wild c.c_exists c.c_join c.c_candidates c.c_matches
           (match selectivity c with Some s -> Printf.sprintf "%.3f" s | None -> "-")
           c.c_decoded_bytes))
    fp.containers;
  Buffer.add_string b "\nblock-size recommendations:\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-*s %-6s x%-4g %s\n" width r.r_container r.r_action r.r_factor r.r_reason))
    (recommend ?heat fp);
  Buffer.contents b
