(* Streaming workload watchdog. See watch.mli.

   A ring of N fixed-duration window buckets, each holding a
   Profile.agg; the executor fan-in (Engine.query_serialized_logged)
   calls [observe] with exactly the per-query observations the JSONL
   query log records, so the rolling fingerprint and an offline
   `xquec profile` over the same stream agree to the last bit — both
   are Profile.agg_fingerprint over the same additions.

   Concurrency: one mutex guards the ring and the derived state.
   [observe] holds it for a few hashtable bumps; [tick] holds it while
   merging at most N small aggs. Both are uncontended next to query
   evaluation, and the disabled path is a single atomic load. It is a
   leaf lock: nothing is called while holding it except Profile
   aggregation (pure) — the heat join and metrics publication in
   [tick] happen after release. *)

type status = {
  w_enabled : bool;
  w_window_s : float;
  w_windows : int;
  w_ticks : int;
  w_last_tick : float option;
  w_records : int;
  w_drift : float option;
  w_drift_ewma : float option;
}

type bucket = { mutable b_epoch : int; mutable b_agg : Profile.agg }

let lock = Mutex.create ()
let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* configuration; [configure] replaces the ring *)
let window_s = ref 10.0
let nwindows = ref 6
let ewma_alpha = ref 0.3

let fresh_ring n = Array.init n (fun _ -> { b_epoch = -1; b_agg = Profile.agg_create () })

let ring = ref (fresh_ring !nwindows)
let baseline : Profile.fingerprint option ref = ref None
let ewma : float option ref = ref None
let ticks = ref 0
let last_tick : float option ref = ref None
let last_drift : float option ref = ref None

let configure ?window_seconds ?windows ?alpha () =
  with_lock @@ fun () ->
  (match window_seconds with Some s when s > 0.0 -> window_s := s | _ -> ());
  (match windows with Some n when n > 0 -> nwindows := n | _ -> ());
  (match alpha with Some a when a > 0.0 && a <= 1.0 -> ewma_alpha := a | _ -> ());
  ring := fresh_ring !nwindows

let set_baseline fp = with_lock @@ fun () -> baseline := fp

let get_baseline () = with_lock @@ fun () -> !baseline

let reset () =
  with_lock @@ fun () ->
  ring := fresh_ring !nwindows;
  ewma := None;
  ticks := 0;
  last_tick := None;
  last_drift := None

let epoch_of now = int_of_float (now /. !window_s)

(* the bucket for [epoch], recycling a slot whose window has passed *)
let bucket_for epoch =
  let b = !ring.(epoch mod !nwindows) in
  if b.b_epoch <> epoch then begin
    b.b_epoch <- epoch;
    b.b_agg <- Profile.agg_create ()
  end;
  b.b_agg

let observe ?now ~(predicates : Profile.obs list) ~(containers : (string * int) list) () =
  if enabled () then begin
    let now = match now with Some t -> t | None -> Unix.gettimeofday () in
    with_lock @@ fun () ->
    Profile.agg_add (bucket_for (epoch_of now)) ~predicates ~containers
  end

(* merge the live buckets (window not yet expired at [now]) *)
let rolling_agg now =
  let live = epoch_of now - !nwindows in
  let g = Profile.agg_create () in
  Array.iter (fun b -> if b.b_epoch > live then Profile.agg_merge ~into:g b.b_agg) !ring;
  g

let fingerprint ?now () =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  with_lock @@ fun () -> Profile.agg_fingerprint (rolling_agg now)

let drift_of fp =
  match (!baseline, fp.Profile.weights) with
  | Some b, _ :: _ -> Some (Profile.drift b fp)
  | _ -> None

let status_locked () =
  {
    w_enabled = enabled ();
    w_window_s = !window_s;
    w_windows = !nwindows;
    w_ticks = !ticks;
    w_last_tick = !last_tick;
    w_records = 0;
    w_drift = !last_drift;
    w_drift_ewma = !ewma;
  }

let status () = with_lock status_locked

let tick ?now () =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let fp, st =
    with_lock @@ fun () ->
    let fp = Profile.agg_fingerprint (rolling_agg now) in
    let drift = drift_of fp in
    (match drift with
    | Some d ->
      ewma :=
        Some (match !ewma with None -> d | Some e -> (!ewma_alpha *. d) +. ((1.0 -. !ewma_alpha) *. e))
    | None -> ());
    last_drift := drift;
    incr ticks;
    last_tick := Some now;
    (fp, { (status_locked ()) with w_records = fp.Profile.records })
  in
  (* metrics publication outside the lock: Metrics has its own *)
  Metrics.set_counter "watch.ticks" st.w_ticks;
  Metrics.set_gauge "watch.window.records" (float_of_int st.w_records);
  Metrics.set_gauge "watch.window.containers" (float_of_int (List.length fp.Profile.containers));
  Metrics.set_gauge "watch.last_tick_unix" now;
  (match st.w_drift with Some d -> Metrics.set_gauge "watch.drift" d | None -> ());
  (match st.w_drift_ewma with Some d -> Metrics.set_gauge "watch.drift_ewma" d | None -> ());
  let recs = Profile.recommend ~heat:(Heat.snapshot_json ~top_blocks:0 ()) fp in
  let count action =
    List.length (List.filter (fun (r : Profile.recommendation) -> r.Profile.r_action = action) recs)
  in
  Metrics.set_gauge "watch.recommend.shrink" (float_of_int (count "shrink"));
  Metrics.set_gauge "watch.recommend.grow" (float_of_int (count "grow"));
  Metrics.set_gauge "watch.recommend.keep" (float_of_int (count "keep"));
  st

let snapshot_json ?now () =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let fp, st, base =
    with_lock @@ fun () ->
    let fp = Profile.agg_fingerprint (rolling_agg now) in
    (fp, { (status_locked ()) with w_records = fp.Profile.records }, !baseline)
  in
  let drift_now = match base with Some b when fp.Profile.weights <> [] -> Some (Profile.drift b fp) | _ -> None in
  let heat = Heat.snapshot_json ~top_blocks:0 () in
  let opt_num = function Some v -> Json.Num v | None -> Json.Null in
  let weights =
    List.map
      (fun ((container, kind), w) ->
        Json.Obj [ ("container", Json.Str container); ("kind", Json.Str kind); ("weight", Json.Num w) ])
      fp.Profile.weights
  in
  let recs =
    List.map
      (fun (r : Profile.recommendation) ->
        Json.Obj
          [
            ("container", Json.Str r.Profile.r_container);
            ("action", Json.Str r.Profile.r_action);
            ("factor", Json.Num r.Profile.r_factor);
            ("reason", Json.Str r.Profile.r_reason);
          ])
      (Profile.recommend ~heat fp)
  in
  Json.Obj
    [
      ("enabled", Json.Bool st.w_enabled);
      ("window_s", Json.Num st.w_window_s);
      ("windows", Json.Num (float_of_int st.w_windows));
      ("ticks", Json.Num (float_of_int st.w_ticks));
      ("last_tick_unix", opt_num st.w_last_tick);
      ("records", Json.Num (float_of_int st.w_records));
      ("baseline", Json.Bool (base <> None));
      ("drift", opt_num drift_now);
      ("drift_ewma", opt_num st.w_drift_ewma);
      ("weights", Json.List weights);
      ("containers", Json.List (List.map Profile.cstat_json fp.Profile.containers));
      ("recommendations", Json.List recs);
    ]
