(* Xquec_obs: the telemetry substrate — span tracing, a metrics
   registry, and profiled-plan EXPLAIN — shared by the loader, the
   storage layer, the codecs, the executor and the CLI.

   Everything is off by default; [set_enabled true] (or the CLI's
   --stats / --trace-out / explain paths) turns the global sinks on.
   Disabled instrumentation costs one ref load + branch per site. *)

module Json = Json
module Trace = Trace
module Metrics = Metrics
module Explain = Explain
module Query_log = Query_log
module Expo = Expo
module Hammer = Hammer
module Budget = Budget
module Gate = Gate
module Heat = Heat
module Profile = Profile
module Watch = Watch
module Alert = Alert

let set_enabled (b : bool) : unit = Control.enabled := b

let is_enabled () : bool = !Control.enabled

(** Enable collection, run [f], restore the previous state. *)
let with_enabled (f : unit -> 'a) : 'a =
  let prev = !Control.enabled in
  Control.enabled := true;
  Fun.protect ~finally:(fun () -> Control.enabled := prev) f

(** Clear every sink (metrics registry and trace ring buffer). *)
let reset () : unit =
  Metrics.reset ();
  Trace.clear ()
