(* Minimal JSON value type, printer and parser — enough for the metrics
   snapshots, chrome traces and BENCH_results.json this layer emits, and
   for the tests to round-trip them without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec add_to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i it ->
        if i > 0 then Buffer.add_char buf ',';
        add_to_buffer buf it)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        add_to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  add_to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code = int_of_string ("0x" ^ hex) in
               (* keep it simple: only BMP code points below 0x80 map to a
                  single byte; others are replaced *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_char buf '?';
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and report readers)                            *)
(* ------------------------------------------------------------------ *)

let member (key : string) (v : t) : t option =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
