(* Per-query resource budgets, armed per domain.

   The serving layer gives each query a wall-clock and/or decoded-bytes
   allowance before evaluating it ([arm]); the storage layer charges
   decoded bytes as blocks leave the codecs and polls [check] at every
   block access. When an allowance is exhausted the poll raises
   {!Exceeded} on the evaluating domain, unwinding the query cleanly —
   the engine holds no locks across block fetches, so the exception is
   an ordinary early return and the server maps it to a 408-style
   response.

   Attribution under parallel decode: the budget handle is captured on
   the evaluating domain (Domain.DLS) when a batch is submitted and the
   charge closure carries it onto whichever Domain_pool worker performs
   the decode — the charge lands on the query that asked for the block,
   not on the domain that happened to decode it. Charges are atomic
   adds; checks are reads plus a compare. A process with no armed
   budget anywhere (every CLI path, the bench) pays one shared atomic
   load per poll — the armed count below short-circuits [current]
   before the DLS lookup, keeping the block-fetch hot path at its
   pre-budget cost when serving budgets are off.

   Checks are cooperative and block-grained: a query trips the budget at
   the next block access after crossing it, so the overshoot is bounded
   by one decode batch. Pure in-memory phases (serializing an already
   decoded result) run to completion. *)

type trip = { t_kind : string; t_limit : float; t_observed : float }

exception Exceeded of trip

type t = {
  b_started_us : float;
  b_wall_ms : float option;  (* wall-clock allowance, milliseconds *)
  b_decode_bytes : int option;  (* decoded-bytes allowance *)
  b_charged : int Atomic.t;  (* decoded bytes charged so far *)
}

type handle = t option

let key : handle Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Number of domains with an armed budget, process-wide: the fast-path
   gate for [current]. Maintained by [arm]/[disarm] pairing. *)
let armed_count : int Atomic.t = Atomic.make 0

let now_us () = Unix.gettimeofday () *. 1e6

let arm ?wall_ms ?decode_bytes () : unit =
  let wall_ms = match wall_ms with Some w when w > 0.0 -> Some w | _ -> None in
  let decode_bytes =
    match decode_bytes with Some b when b > 0 -> Some b | _ -> None
  in
  let h =
    if wall_ms = None && decode_bytes = None then None
    else
      Some
        {
          b_started_us = now_us ();
          b_wall_ms = wall_ms;
          b_decode_bytes = decode_bytes;
          b_charged = Atomic.make 0;
        }
  in
  (match Domain.DLS.get key with Some _ -> Atomic.decr armed_count | None -> ());
  Domain.DLS.set key h;
  match h with Some _ -> Atomic.incr armed_count | None -> ()

let disarm () : unit =
  (match Domain.DLS.get key with Some _ -> Atomic.decr armed_count | None -> ());
  Domain.DLS.set key None

let current () : handle =
  if Atomic.get armed_count = 0 then None else Domain.DLS.get key

let charge (h : handle) (bytes : int) : unit =
  match h with
  | None -> ()
  | Some b -> if bytes > 0 then ignore (Atomic.fetch_and_add b.b_charged bytes)

let charged (h : handle) : int =
  match h with None -> 0 | Some b -> Atomic.get b.b_charged

let check (h : handle) : unit =
  match h with
  | None -> ()
  | Some b ->
    (match b.b_decode_bytes with
    | Some limit ->
      let used = Atomic.get b.b_charged in
      if used > limit then
        raise
          (Exceeded
             {
               t_kind = "decode_bytes";
               t_limit = float_of_int limit;
               t_observed = float_of_int used;
             })
    | None -> ());
    (match b.b_wall_ms with
    | Some limit ->
      let elapsed = (now_us () -. b.b_started_us) /. 1000.0 in
      if elapsed > limit then
        raise (Exceeded { t_kind = "wall_ms"; t_limit = limit; t_observed = elapsed })
    | None -> ())

let check_current () : unit = check (current ())
