(** Per-query resource budgets, armed per domain (Domain.DLS).

    The serving layer {!arm}s a wall-clock and/or decoded-bytes
    allowance on the domain about to evaluate a query; the storage layer
    polls {!check} at every block access and {!charge}s decoded bytes as
    blocks leave the codecs. Crossing an allowance raises {!Exceeded} on
    the evaluating domain at its next poll, which unwinds the query as
    an ordinary exception (no locks are held across block fetches) —
    [xquec serve] maps it to a 408-style response.

    Enforcement is cooperative and block-grained: the overshoot past a
    tripped budget is bounded by one decode batch, and phases that touch
    no container blocks (serializing an already decoded result) run to
    completion. An unarmed domain — every CLI path, the bench, pool
    workers acting on their own behalf — pays one [Domain.DLS] load per
    poll. *)

(** What tripped: [t_kind] is ["wall_ms"] or ["decode_bytes"]; the
    limit and the observed value share that unit (milliseconds or
    bytes, as floats for a uniform error body). *)
type trip = { t_kind : string; t_limit : float; t_observed : float }

(** Raised by {!check} on the polling domain when an allowance is
    exhausted. *)
exception Exceeded of trip

(** An armed budget: start time, allowances, and the atomic
    decoded-byte tally that {!charge} adds to from any domain. *)
type t

(** What a poll or charge site holds: [None] when the capturing domain
    was unarmed (all operations are no-ops), [Some] the armed budget. *)
type handle = t option

(** Arm the calling domain: the next {!check} polls against these
    allowances and {!charge}s accumulate. Non-positive or omitted
    allowances are treated as unlimited; with both unlimited the domain
    stays unarmed. Re-arming replaces the previous budget (the tally
    restarts at zero). *)
val arm : ?wall_ms:float -> ?decode_bytes:int -> unit -> unit

(** Disarm the calling domain (idempotent). The serving layer calls
    this in a [Fun.protect] finalizer so a failed query cannot leak its
    budget onto the next one handled by the same worker. *)
val disarm : unit -> unit

(** The calling domain's budget, to capture into decode closures that
    may execute on another domain ([None] = unarmed). When no domain
    in the process has an armed budget this is a single shared atomic
    load — the block-fetch hot path pays nothing beyond it. *)
val current : unit -> handle

(** Add decoded bytes to the handle's tally (atomic; callable from any
    domain). No-op on [None] or non-positive byte counts. *)
val charge : handle -> int -> unit

(** Decoded bytes charged so far (0 on [None]). *)
val charged : handle -> int

(** Poll the handle: raises {!Exceeded} when a tally or the elapsed
    wall clock has crossed its allowance, else returns. No-op on
    [None]. *)
val check : handle -> unit

(** [check (current ())] — the storage layer's one-line poll site. *)
val check_current : unit -> unit
