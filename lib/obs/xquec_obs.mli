(** Xquec_obs: the telemetry substrate — span tracing, a metrics
    registry, and profiled-plan EXPLAIN — shared by the loader, the
    storage layer, the codecs, the executor and the CLI.

    Everything is off by default; {!set_enabled} (or the CLI's
    [--stats] / [--trace-out] / explain paths) turns the global sinks
    on. Disabled instrumentation costs one ref load + branch per
    site. *)

(** JSON values and (de)serialization. *)
module Json = Json

(** Span tracing with chrome-trace export (per-domain ring buffers). *)
module Trace = Trace

(** Thread-safe counters, gauges and histograms, with JSON and
    Prometheus exposition. *)
module Metrics = Metrics

(** Profiled physical plans (EXPLAIN ANALYZE). *)
module Explain = Explain

(** Structured JSONL query log sink. *)
module Query_log = Query_log

(** Minimal HTTP server exposing [/metrics] and [/healthz], with a
    worker-pool fan-out and accept-time admission control. *)
module Expo = Expo

(** Load-generation HTTP client (blocking single requests plus a
    select-multiplexed concurrent driver) for tests and the serving
    bench. *)
module Hammer = Hammer

(** Per-query wall-clock / decoded-bytes budgets, armed per domain and
    polled by the storage layer. *)
module Budget = Budget

(** Benchmark regression gate: tolerance-aware BENCH_results.json
    comparison. *)
module Gate = Gate

(** Per-container / per-block access heat accounting (always-on
    atomics behind their own switch). *)
module Heat = Heat

(** Workload fingerprinting, drift scoring and block-size
    recommendations over the JSONL query log. *)
module Profile = Profile

(** Streaming workload watchdog: rolling windowed fingerprints fed by
    the executor's per-query observations, drift vs the declared
    build-time mix, live block-size recommendations. *)
module Watch = Watch

(** Threshold + sustain-for-K-windows alert rules over named signals,
    evaluated once per watchdog tick. *)
module Alert = Alert

(** Turn the global trace/metrics sinks on or off. *)
val set_enabled : bool -> unit

(** Current state of the global switch. *)
val is_enabled : unit -> bool

(** Enable collection, run [f], restore the previous state. *)
val with_enabled : (unit -> 'a) -> 'a

(** Clear every sink (metrics registry and trace ring buffer). *)
val reset : unit -> unit
