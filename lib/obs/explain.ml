(* Profiled physical plans ("EXPLAIN ANALYZE"): the executor builds a
   tree of operator nodes while it runs, each annotated with inclusive
   wall time, output cardinality, and how many predicate evaluations ran
   on compressed codes vs. decompress-then-compare (the distinction the
   paper's §3 cost model prices).

   The profile is an explicit object threaded through the evaluation
   context, so profiling works independently of the global
   [Control.enabled] switch (and costs nothing when no profile is
   attached). *)

type node = {
  op : string;  (** operator label, e.g. "child::item", "hash join $p" *)
  kind : string;  (** operator class for metric keys, e.g. "step", "hash_join" *)
  attrs : (string * string) list;
  mutable wall_us : float;  (** inclusive wall time *)
  mutable rows : int;  (** output cardinality; -1 = not applicable *)
  mutable cmp_compressed : int;
      (** predicate evaluations decided on compressed codes at this node *)
  mutable cmp_decompressed : int;
      (** predicate evaluations that had to decompress values *)
  mutable cache_hits : int;  (** buffer-pool hits, inclusive of children *)
  mutable cache_misses : int;  (** buffer-pool misses (block decodes) *)
  mutable cache_waits : int;
      (** buffer-pool latch waits: fetches that blocked on another
          domain's in-flight decode of the same block *)
  mutable blocks_skipped : int;  (** blocks pruned via headers, never decoded *)
  mutable decoded_bytes : int;  (** bytes charged to the pool by this subtree *)
  mutable skipped_bytes : int;
      (** compressed payload bytes of the pruned blocks *)
  mutable rev_children : node list;
}

type t = { root : node; mutable stack : node list }

let make_node ?(attrs = []) ~kind op =
  { op; kind; attrs; wall_us = 0.0; rows = -1; cmp_compressed = 0; cmp_decompressed = 0;
    cache_hits = 0; cache_misses = 0; cache_waits = 0; blocks_skipped = 0;
    decoded_bytes = 0; skipped_bytes = 0; rev_children = [] }

let create ?attrs (op : string) : t =
  let root = make_node ?attrs ~kind:"root" op in
  { root; stack = [ root ] }

let current (t : t) : node =
  match t.stack with n :: _ -> n | [] -> t.root

(** Run [f] as a child operator of the current node; [f] receives the
    fresh node so it can set rows / attach attributes. Wall time is
    inclusive of children. *)
let with_op (t : t) ?attrs ~(kind : string) (op : string) (f : node -> 'a) : 'a =
  let node = make_node ?attrs ~kind op in
  let parent = current t in
  parent.rev_children <- node :: parent.rev_children;
  t.stack <- node :: t.stack;
  let t0 = Trace.now_us () in
  let finish () =
    node.wall_us <- Trace.now_us () -. t0;
    (match t.stack with
    | top :: rest when top == node -> t.stack <- rest
    | _ -> () (* unbalanced exits only happen on exceptions already unwinding *));
    Metrics.incr (Printf.sprintf "executor.%s.calls" kind);
    if node.rows >= 0 then
      Metrics.incr ~by:node.rows (Printf.sprintf "executor.%s.rows_out" kind)
  in
  match f node with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let set_rows (node : node) (n : int) = node.rows <- n

(** Attribute [n] predicate evaluations to the innermost open operator. *)
let note_cmp (t : t) ~(compressed : bool) (n : int) : unit =
  if n > 0 then begin
    let node = current t in
    if compressed then node.cmp_compressed <- node.cmp_compressed + n
    else node.cmp_decompressed <- node.cmp_decompressed + n
  end

(** Stamp a node's buffer-pool activity (hits/misses/pruned blocks/bytes
    decoded). Like [wall_us] this is inclusive of the node's children:
    the executor records the delta of the process-wide pool counters
    around the operator's whole evaluation. *)
let set_cache (node : node) ?(skipped_bytes = 0) ~hits ~misses ~waits ~skipped
    ~decoded_bytes () =
  node.cache_hits <- hits;
  node.cache_misses <- misses;
  node.cache_waits <- waits;
  node.blocks_skipped <- skipped;
  node.decoded_bytes <- decoded_bytes;
  node.skipped_bytes <- skipped_bytes

(** Close the profile: stamp the root's wall time and return the tree. *)
let finish (t : t) ~(wall_us : float) ~(rows : int) : node =
  t.root.wall_us <- wall_us;
  t.root.rows <- rows;
  t.stack <- [ t.root ];
  t.root

let children (n : node) : node list = List.rev n.rev_children

(* --- totals -------------------------------------------------------- *)

let rec fold (f : 'a -> node -> 'a) (acc : 'a) (n : node) : 'a =
  List.fold_left (fold f) (f acc n) (children n)

type totals = { operators : int; compressed : int; decompressed : int }

let totals (n : node) : totals =
  fold
    (fun acc n ->
      {
        operators = acc.operators + 1;
        compressed = acc.compressed + n.cmp_compressed;
        decompressed = acc.decompressed + n.cmp_decompressed;
      })
    { operators = 0; compressed = 0; decompressed = 0 }
    n

(* --- rendering ----------------------------------------------------- *)

let annotations (n : node) : string =
  let parts = ref [] in
  if n.cmp_decompressed > 0 || n.cmp_compressed > 0 then
    parts :=
      Printf.sprintf "cmp %d compressed / %d decompressed" n.cmp_compressed n.cmp_decompressed
      :: !parts;
  if n.cache_hits > 0 || n.cache_misses > 0 || n.blocks_skipped > 0 then begin
    let waits = if n.cache_waits > 0 then Printf.sprintf " / %d wait" n.cache_waits else "" in
    let pruned_bytes =
      if n.skipped_bytes > 0 then Printf.sprintf " (%d B pruned)" n.skipped_bytes else ""
    in
    parts :=
      Printf.sprintf "cache %d hit / %d miss%s, %d blocks pruned%s, %d B decoded"
        n.cache_hits n.cache_misses waits n.blocks_skipped pruned_bytes n.decoded_bytes
      :: !parts
  end;
  List.iter (fun (k, v) -> parts := Printf.sprintf "%s=%s" k v :: !parts) (List.rev n.attrs);
  match !parts with [] -> "" | l -> "  [" ^ String.concat "; " l ^ "]"

let render (root : node) : string =
  let buf = Buffer.create 512 in
  let rec go ~is_root prefix is_last (n : node) =
    let connector = if is_root then "" else if is_last then "`- " else "|- " in
    let rows = if n.rows >= 0 then Printf.sprintf ", %d rows" n.rows else "" in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s  (%.3f ms%s)%s\n" prefix connector n.op (n.wall_us /. 1000.0)
         rows (annotations n));
    let kids = children n in
    let child_prefix = if is_root then "" else prefix ^ if is_last then "   " else "|  " in
    let rec each = function
      | [] -> ()
      | [ last ] -> go ~is_root:false child_prefix true last
      | k :: rest ->
        go ~is_root:false child_prefix false k;
        each rest
    in
    each kids
  in
  go ~is_root:true "" true root;
  Buffer.contents buf

let rec to_json (n : node) : Json.t =
  Json.Obj
    [
      ("op", Json.Str n.op);
      ("kind", Json.Str n.kind);
      ("wall_ms", Json.Num (n.wall_us /. 1000.0));
      ("rows", if n.rows >= 0 then Json.Num (float_of_int n.rows) else Json.Null);
      ("cmp_compressed", Json.Num (float_of_int n.cmp_compressed));
      ("cmp_decompressed", Json.Num (float_of_int n.cmp_decompressed));
      ("cache_hits", Json.Num (float_of_int n.cache_hits));
      ("cache_misses", Json.Num (float_of_int n.cache_misses));
      ("cache_waits", Json.Num (float_of_int n.cache_waits));
      ("blocks_skipped", Json.Num (float_of_int n.blocks_skipped));
      ("decoded_bytes", Json.Num (float_of_int n.decoded_bytes));
      ("skipped_bytes", Json.Num (float_of_int n.skipped_bytes));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) n.attrs));
      ("children", Json.List (List.map to_json (children n)));
    ]

(** Compact single-line plan shape built from operator kinds, e.g.
    ["root(step(step,predicate))"] — a stable fingerprint for grouping
    query-log records by plan. *)
let rec shape (n : node) : string =
  match children n with
  | [] -> n.kind
  | kids -> n.kind ^ "(" ^ String.concat "," (List.map shape kids) ^ ")"

(** Compact per-operator profile for the query log: one object per
    node with only op/kind/rows/wall_ms/cmp counts (children nested),
    an order of magnitude smaller than {!to_json}. *)
let rec summary_json (n : node) : Json.t =
  Json.Obj
    [
      ("op", Json.Str n.op);
      ("kind", Json.Str n.kind);
      ("wall_ms", Json.Num (n.wall_us /. 1000.0));
      ("rows", if n.rows >= 0 then Json.Num (float_of_int n.rows) else Json.Null);
      ("cmp_compressed", Json.Num (float_of_int n.cmp_compressed));
      ("cmp_decompressed", Json.Num (float_of_int n.cmp_decompressed));
      ("children", Json.List (List.map summary_json (children n)));
    ]
