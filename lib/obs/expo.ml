(* Minimal HTTP/1.1 server for metrics exposition — blocking Unix
   sockets, no external dependencies. This is deliberately not a
   general web server: one accept loop on a dedicated domain, one
   connection handled at a time, [Connection: close] on every response.
   A Prometheus scraper (or curl) issues one request per connection a
   few times a minute; sequential handling is exactly enough and keeps
   the code auditable.

   Built-in routes: GET /metrics (Prometheus text exposition of the
   whole Metrics registry, after running the [collect] callback so
   gauges derived from live state are fresh) and GET /healthz. An
   [extra] handler runs first, so an embedding server (xquec serve)
   can add query endpoints without this module knowing about them. *)

type request = {
  meth : string;  (* "GET", "POST", ... *)
  path : string;  (* decoded path without the query string *)
  query : (string * string) list;  (* decoded query parameters, in order *)
  body : string;
}

type response = { status : int; content_type : string; body : string }

type handler = request -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  domain : unit Domain.t;
}

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let respond (status : int) (content_type : string) (body : string) : response =
  { status; content_type; body }

(* --- request parsing ------------------------------------------------- *)

let percent_decode (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char buf (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query (s : string) : (string * string) list =
  String.split_on_char '&' s
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (percent_decode kv, "")
           | Some eq ->
             Some
               ( percent_decode (String.sub kv 0 eq),
                 percent_decode (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))

exception Bad_request of string

(* Hard ceilings: a scraper or the serve CLI never comes close, so
   anything beyond them is a confused or hostile client and earns a
   400 instead of unbounded buffering. *)
let max_line_bytes = 8 * 1024
let max_body_bytes = 16 * 1024 * 1024

(* Read one CRLF- (or LF-) terminated line, without the terminator,
   refusing lines longer than [max_line_bytes]. [End_of_file] escapes
   only when the connection closes before the first byte (a probe or a
   scraper going away — dropped silently by the caller); a close
   mid-line is a malformed request and earns a 400. *)
let read_line_crlf (ic : in_channel) : string =
  let buf = Buffer.create 128 in
  let rec go () =
    match input_char ic with
    | '\n' -> Buffer.contents buf
    | c ->
      if Buffer.length buf >= max_line_bytes then raise (Bad_request "header line too long");
      Buffer.add_char buf c;
      go ()
    | exception End_of_file ->
      if Buffer.length buf = 0 then raise End_of_file
      else raise (Bad_request "premature end of request")
  in
  let line = go () in
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_request (ic : in_channel) : request =
  let request_line = read_line_crlf ic in
  let meth, target =
    match String.split_on_char ' ' request_line with
    | [ m; t; _version ] -> (m, t)
    | _ -> raise (Bad_request "malformed request line")
  in
  (* headers: we only need Content-Length, but a malformed value must
     not be silently read as "no body" *)
  let content_length = ref None in
  let rec headers () =
    let line = try read_line_crlf ic with End_of_file -> raise (Bad_request "premature end of request") in
    if line <> "" then begin
      (match String.index_opt line ':' with
      | Some colon ->
        let k = String.lowercase_ascii (String.trim (String.sub line 0 colon)) in
        let v = String.trim (String.sub line (colon + 1) (String.length line - colon - 1)) in
        if k = "content-length" then begin
          match int_of_string_opt v with
          | Some n when n >= 0 -> content_length := Some n
          | _ -> raise (Bad_request "malformed Content-Length")
        end
      | None -> ());
      headers ()
    end
  in
  headers ();
  let body =
    match (!content_length, meth) with
    | None, ("POST" | "PUT" | "PATCH") -> raise (Bad_request "missing Content-Length")
    | None, _ | Some 0, _ -> ""
    | Some n, _ when n > max_body_bytes -> raise (Bad_request "body too large")
    | Some n, _ -> (
      try really_input_string ic n with End_of_file -> raise (Bad_request "truncated body"))
  in
  let path, query =
    match String.index_opt target '?' with
    | None -> (target, [])
    | Some q ->
      ( String.sub target 0 q,
        parse_query (String.sub target (q + 1) (String.length target - q - 1)) )
  in
  { meth; path = percent_decode path; query; body }

let write_response (oc : out_channel) (r : response) : unit =
  Printf.fprintf oc "HTTP/1.1 %d %s\r\n" r.status (status_text r.status);
  Printf.fprintf oc "Content-Type: %s\r\n" r.content_type;
  Printf.fprintf oc "Content-Length: %d\r\n" (String.length r.body);
  output_string oc "Connection: close\r\n\r\n";
  output_string oc r.body;
  flush oc

(* --- routing --------------------------------------------------------- *)

let builtin_routes ~(collect : unit -> unit) (req : request) : response =
  match (req.meth, req.path) with
  | "GET", "/metrics" ->
    collect ();
    respond 200 "text/plain; version=0.0.4; charset=utf-8" (Metrics.to_prometheus ())
  | "GET", "/healthz" -> respond 200 "text/plain; charset=utf-8" "ok\n"
  | _, ("/metrics" | "/healthz") -> respond 405 "text/plain; charset=utf-8" "method not allowed\n"
  | _ -> respond 404 "text/plain; charset=utf-8" "not found\n"

let handle_connection ~(extra : handler) ~(collect : unit -> unit) (fd : Unix.file_descr) :
    unit =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let req = parse_request ic in
     let resp =
       try
         match extra req with
         | Some r -> r
         | None -> builtin_routes ~collect req
       with e ->
         respond 500 "text/plain; charset=utf-8" (Printexc.to_string e ^ "\n")
     in
     write_response oc resp
   with
  | Bad_request msg ->
    (try write_response oc (respond 400 "text/plain; charset=utf-8" (msg ^ "\n"))
     with _ -> ())
  | End_of_file | Sys_error _ -> ());
  (* closing the channel closes the underlying fd *)
  try close_out_noerr oc with _ -> ()

(* --- lifecycle ------------------------------------------------------- *)

let accept_loop (t_sock : Unix.file_descr) (stopping : bool Atomic.t) (extra : handler)
    (collect : unit -> unit) : unit =
  let rec loop () =
    if not (Atomic.get stopping) then begin
      (match Unix.accept t_sock with
      | fd, _addr -> handle_connection ~extra ~collect fd
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listen socket closed by [stop] *)
        Atomic.set stopping true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception _ -> ());
      loop ()
    end
  in
  loop ()

let start ?(host = "127.0.0.1") ~(port : int) ?(extra : handler = fun _ -> None)
    ?(collect : unit -> unit = fun () -> ()) () : t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let actual_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let stopping = Atomic.make false in
  let domain = Domain.spawn (fun () -> accept_loop sock stopping extra collect) in
  { sock; port = actual_port; stopping; domain }

let port (t : t) : int = t.port

let stop (t : t) : unit =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (* Closing the fd does NOT wake a thread already parked in accept()
       on Linux, so the acceptor must be woken explicitly: shutdown on
       the listening socket makes the blocked accept fail (EINVAL), and
       a loopback self-connection is the portable fallback — the loop
       re-checks [stopping] after handling it. Only close after the
       join, so the acceptor never races a recycled fd number. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
    (try
       let addr =
         match Unix.getsockname t.sock with
         | Unix.ADDR_INET (a, p) when a <> Unix.inet_addr_any -> Unix.ADDR_INET (a, p)
         | _ -> Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)
       in
       let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect c addr with _ -> ());
       (try Unix.close c with _ -> ())
     with _ -> ());
    Domain.join t.domain;
    (try Unix.close t.sock with _ -> ())
  end

let wait (t : t) : unit = Domain.join t.domain
