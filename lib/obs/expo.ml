(* Minimal HTTP/1.1 server — blocking Unix sockets, no external
   dependencies. This is deliberately not a general web server: one
   accept loop on a dedicated domain hands each connection to a fixed
   pool of worker domains (or handles it inline when [workers = 0],
   the metrics-scraper configuration), every response carries
   [Connection: close], and admission is a single saturation gate at
   accept time.

   Concurrency model (see docs/CONCURRENCY.md):

   - the acceptor owns the listening socket. For every accepted
     connection it first applies the admission gate: when
     [max_inflight > 0] and that many connections are already accepted
     but unfinished, the connection is shed immediately with a canned
     503 carrying [Retry-After] — it never reaches a worker, so a
     saturated server keeps answering shed decisions at accept speed
     instead of queueing unboundedly.
   - admitted connections go to a mutex+condvar FIFO drained by the
     worker domains; each worker parses, runs the handler and writes
     the response for one connection at a time. With [workers = 0] the
     acceptor handles the connection itself — exactly the historical
     sequential server.
   - a client that disappears mid-response (EPIPE / ECONNRESET) costs
     the server nothing: SIGPIPE is ignored process-wide on [start],
     and the per-connection write path swallows broken-pipe errors.

   Built-in routes: GET /metrics (Prometheus text exposition of the
   whole Metrics registry, after running the [collect] callback so
   gauges derived from live state are fresh) and GET /healthz. An
   [extra] handler runs first, so an embedding server (xquec serve)
   can add query endpoints without this module knowing about them. *)

type request = {
  meth : string;  (* "GET", "POST", ... *)
  path : string;  (* decoded path without the query string *)
  query : (string * string) list;  (* decoded query parameters, in order *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;  (* extra headers, e.g. Retry-After *)
  body : string;
}

type handler = request -> response option

(* State shared between the acceptor and the workers; built before any
   domain is spawned so the loops can simply close over it. *)
type core = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  wq : Unix.file_descr Queue.t;  (* admitted connections awaiting a worker *)
  wq_mutex : Mutex.t;
  wq_cond : Condition.t;
}

type t = {
  core : core;
  acceptor : unit Domain.t;
  workers : unit Domain.t list;
}

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let respond ?(headers = []) (status : int) (content_type : string) (body : string) :
    response =
  { status; content_type; headers; body }

(* --- serving statistics ---------------------------------------------- *)

(* Process-wide (like the Domain_pool counters): any domain may bump
   them and a /metrics collect callback reads them without holding a
   reference to the server value. Several servers in one process (the
   test suite) share the counters, which is fine for cumulative
   accounting. *)

let stat_accepted = Atomic.make 0 (* connections admitted past the gate *)

let stat_handled = Atomic.make 0 (* connections fully served *)

let stat_rejected = Atomic.make 0 (* connections shed with the canned 503 *)

let stat_inflight = Atomic.make 0 (* admitted but not yet finished *)

let stat_inflight_hw = Atomic.make 0 (* high-water mark of the above *)

let stat_workers = Atomic.make 0 (* worker pool size of the last [start] *)

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

type stats = {
  e_workers : int;
  e_accepted : int;
  e_handled : int;
  e_rejected : int;
  e_inflight : int;
  e_inflight_high_water : int;
}

let stats () : stats =
  {
    e_workers = Atomic.get stat_workers;
    e_accepted = Atomic.get stat_accepted;
    e_handled = Atomic.get stat_handled;
    e_rejected = Atomic.get stat_rejected;
    e_inflight = Atomic.get stat_inflight;
    e_inflight_high_water = Atomic.get stat_inflight_hw;
  }

let reset_stats () =
  Atomic.set stat_accepted 0;
  Atomic.set stat_handled 0;
  Atomic.set stat_rejected 0;
  Atomic.set stat_inflight_hw 0

(* --- request parsing ------------------------------------------------- *)

let percent_decode (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char buf (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query (s : string) : (string * string) list =
  String.split_on_char '&' s
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (percent_decode kv, "")
           | Some eq ->
             Some
               ( percent_decode (String.sub kv 0 eq),
                 percent_decode (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))

exception Bad_request of string

(* Hard ceilings: a scraper or the serve CLI never comes close, so
   anything beyond them is a confused or hostile client and earns a
   400 instead of unbounded buffering. *)
let max_line_bytes = 8 * 1024
let max_body_bytes = 16 * 1024 * 1024

(* Read one CRLF- (or LF-) terminated line, without the terminator,
   refusing lines longer than [max_line_bytes]. [End_of_file] escapes
   only when the connection closes before the first byte (a probe or a
   scraper going away — dropped silently by the caller); a close
   mid-line is a malformed request and earns a 400. *)
let read_line_crlf (ic : in_channel) : string =
  let buf = Buffer.create 128 in
  let rec go () =
    match input_char ic with
    | '\n' -> Buffer.contents buf
    | c ->
      if Buffer.length buf >= max_line_bytes then raise (Bad_request "header line too long");
      Buffer.add_char buf c;
      go ()
    | exception End_of_file ->
      if Buffer.length buf = 0 then raise End_of_file
      else raise (Bad_request "premature end of request")
  in
  let line = go () in
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_request (ic : in_channel) : request =
  let request_line = read_line_crlf ic in
  let meth, target =
    match String.split_on_char ' ' request_line with
    | [ m; t; _version ] -> (m, t)
    | _ -> raise (Bad_request "malformed request line")
  in
  (* headers: we only need Content-Length, but a malformed value must
     not be silently read as "no body" *)
  let content_length = ref None in
  let rec headers () =
    let line = try read_line_crlf ic with End_of_file -> raise (Bad_request "premature end of request") in
    if line <> "" then begin
      (match String.index_opt line ':' with
      | Some colon ->
        let k = String.lowercase_ascii (String.trim (String.sub line 0 colon)) in
        let v = String.trim (String.sub line (colon + 1) (String.length line - colon - 1)) in
        if k = "content-length" then begin
          match int_of_string_opt v with
          | Some n when n >= 0 -> content_length := Some n
          | _ -> raise (Bad_request "malformed Content-Length")
        end
      | None -> ());
      headers ()
    end
  in
  headers ();
  let body =
    match (!content_length, meth) with
    | None, ("POST" | "PUT" | "PATCH") -> raise (Bad_request "missing Content-Length")
    | None, _ | Some 0, _ -> ""
    | Some n, _ when n > max_body_bytes -> raise (Bad_request "body too large")
    | Some n, _ -> (
      try really_input_string ic n with End_of_file -> raise (Bad_request "truncated body"))
  in
  let path, query =
    match String.index_opt target '?' with
    | None -> (target, [])
    | Some q ->
      ( String.sub target 0 q,
        parse_query (String.sub target (q + 1) (String.length target - q - 1)) )
  in
  { meth; path = percent_decode path; query; body }

let write_response (oc : out_channel) (r : response) : unit =
  Printf.fprintf oc "HTTP/1.1 %d %s\r\n" r.status (status_text r.status);
  Printf.fprintf oc "Content-Type: %s\r\n" r.content_type;
  List.iter (fun (k, v) -> Printf.fprintf oc "%s: %s\r\n" k v) r.headers;
  Printf.fprintf oc "Content-Length: %d\r\n" (String.length r.body);
  output_string oc "Connection: close\r\n\r\n";
  output_string oc r.body;
  flush oc

(* --- routing --------------------------------------------------------- *)

let builtin_routes ~(collect : unit -> unit) (req : request) : response =
  match (req.meth, req.path) with
  | "GET", "/metrics" ->
    collect ();
    respond 200 "text/plain; version=0.0.4; charset=utf-8" (Metrics.to_prometheus ())
  | "GET", "/healthz" -> respond 200 "text/plain; charset=utf-8" "ok\n"
  | _, ("/metrics" | "/healthz") -> respond 405 "text/plain; charset=utf-8" "method not allowed\n"
  | _ -> respond 404 "text/plain; charset=utf-8" "not found\n"

(* A client gone mid-connection must never take the server down: with
   SIGPIPE ignored, a write to a reset connection surfaces as EPIPE /
   ECONNRESET (as a Unix_error from the syscall or a Sys_error through
   the channel layer) and is simply dropped — the response has no one
   left to read it. *)
let handle_connection ~(extra : handler) ~(collect : unit -> unit) (fd : Unix.file_descr) :
    unit =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let req = parse_request ic in
     let resp =
       try
         match extra req with
         | Some r -> r
         | None -> builtin_routes ~collect req
       with e ->
         respond 500 "text/plain; charset=utf-8" (Printexc.to_string e ^ "\n")
     in
     write_response oc resp
   with
  | Bad_request msg ->
    (try write_response oc (respond 400 "text/plain; charset=utf-8" (msg ^ "\n"))
     with _ -> ())
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN), _, _) -> ());
  (* closing the channel closes the underlying fd *)
  try close_out_noerr oc with _ -> ()

(* --- admission ------------------------------------------------------- *)

(* The canned saturation reply, written by the acceptor without parsing
   the request. Best effort: the client's request bytes are drained
   once (short timeout) so the kernel does not RST the connection with
   unread data and destroy the 503 in flight; any error just drops the
   connection, which to the client is indistinguishable from overload. *)
let shed_response =
  let body = "{\"error\":\"saturated\",\"detail\":\"too many in-flight requests\"}\n" in
  Printf.sprintf
    "HTTP/1.1 503 Service Unavailable\r\n\
     Content-Type: application/json; charset=utf-8\r\n\
     Retry-After: 1\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    (String.length body) body

let shed (fd : Unix.file_descr) : unit =
  Atomic.incr stat_rejected;
  (try
     (try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05;
        ignore (Unix.read fd (Bytes.create max_line_bytes) 0 max_line_bytes)
      with _ -> ());
     ignore (Unix.write_substring fd shed_response 0 (String.length shed_response))
   with _ -> ());
  try Unix.close fd with _ -> ()

(* --- lifecycle ------------------------------------------------------- *)

let finish_connection ~extra ~collect (fd : Unix.file_descr) : unit =
  handle_connection ~extra ~collect fd;
  Atomic.decr stat_inflight;
  Atomic.incr stat_handled

let worker_loop (c : core) ~extra ~collect () : unit =
  let rec loop () =
    Mutex.lock c.wq_mutex;
    while Queue.is_empty c.wq && not (Atomic.get c.stopping) do
      Condition.wait c.wq_cond c.wq_mutex
    done;
    if Queue.is_empty c.wq then Mutex.unlock c.wq_mutex (* stopping and drained *)
    else begin
      let fd = Queue.pop c.wq in
      Mutex.unlock c.wq_mutex;
      finish_connection ~extra ~collect fd;
      loop ()
    end
  in
  loop ()

let accept_loop (c : core) ~(max_inflight : int) ~(dispatch : bool) ~extra ~collect () :
    unit =
  let rec loop () =
    if not (Atomic.get c.stopping) then begin
      (match Unix.accept c.sock with
      | fd, _addr ->
        if Atomic.get c.stopping then (try Unix.close fd with _ -> ())
        else if max_inflight > 0 && Atomic.get stat_inflight >= max_inflight then shed fd
        else begin
          Atomic.incr stat_accepted;
          let inflight = 1 + Atomic.fetch_and_add stat_inflight 1 in
          atomic_max stat_inflight_hw inflight;
          if dispatch then begin
            Mutex.lock c.wq_mutex;
            Queue.add fd c.wq;
            Condition.signal c.wq_cond;
            Mutex.unlock c.wq_mutex
          end
          else finish_connection ~extra ~collect fd
        end
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listen socket closed by [stop] *)
        Atomic.set c.stopping true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception _ -> ());
      loop ()
    end
  in
  loop ()

let start ?(host = "127.0.0.1") ~(port : int) ?(workers = 0) ?(max_inflight = 0)
    ?(extra : handler = fun _ -> None) ?(collect : unit -> unit = fun () -> ()) () : t =
  (* A client may close its half of the connection while a worker is
     still writing; without this, the resulting SIGPIPE would kill the
     whole process instead of surfacing as a catchable EPIPE. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let workers = max 0 workers in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock (max 16 (2 * max_inflight))
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let actual_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  Atomic.set stat_workers workers;
  let c =
    {
      sock;
      port = actual_port;
      stopping = Atomic.make false;
      wq = Queue.create ();
      wq_mutex = Mutex.create ();
      wq_cond = Condition.create ();
    }
  in
  let worker_domains =
    List.init workers (fun _ -> Domain.spawn (worker_loop c ~extra ~collect))
  in
  let acceptor =
    Domain.spawn (accept_loop c ~max_inflight ~dispatch:(workers > 0) ~extra ~collect)
  in
  { core = c; acceptor; workers = worker_domains }

let port (t : t) : int = t.core.port

let stop (t : t) : unit =
  let c = t.core in
  if not (Atomic.get c.stopping) then begin
    Atomic.set c.stopping true;
    (* Closing the fd does NOT wake a thread already parked in accept()
       on Linux, so the acceptor must be woken explicitly: shutdown on
       the listening socket makes the blocked accept fail (EINVAL), and
       a loopback self-connection is the portable fallback — the loop
       re-checks [stopping] after handling it. Only close after the
       join, so the acceptor never races a recycled fd number. *)
    (try Unix.shutdown c.sock Unix.SHUTDOWN_ALL with _ -> ());
    (try
       let addr =
         match Unix.getsockname c.sock with
         | Unix.ADDR_INET (a, p) when a <> Unix.inet_addr_any -> Unix.ADDR_INET (a, p)
         | _ -> Unix.ADDR_INET (Unix.inet_addr_loopback, c.port)
       in
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect s addr with _ -> ());
       (try Unix.close s with _ -> ())
     with _ -> ());
    Domain.join t.acceptor;
    (* Workers drain the queue (in-flight requests finish), then exit on
       the stopping flag. *)
    Mutex.lock c.wq_mutex;
    Condition.broadcast c.wq_cond;
    Mutex.unlock c.wq_mutex;
    List.iter Domain.join t.workers;
    (try Unix.close c.sock with _ -> ())
  end

let wait (t : t) : unit =
  Domain.join t.acceptor;
  List.iter Domain.join t.workers
