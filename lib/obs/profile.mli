(** Workload fingerprinting over the JSONL query log.

    Aggregates the per-query [predicates] / [containers] tags the
    engine writes (see [docs/OBSERVABILITY.md]) into a {!fingerprint}:
    a normalized weight distribution over (container, predicate-kind)
    pairs plus per-container selectivity and decode totals. Two
    fingerprints — observed vs observed, or observed vs the build-time
    [Workload] via [Workload.fingerprint] — compare with {!drift}, and
    {!recommend} turns a fingerprint (optionally joined with a
    [Heat.snapshot_json] snapshot) into per-container block-size
    advice: exactly the inputs online re-partitioning and background
    compaction need.

    Predicate kinds are the strings ["eq"], ["range"], ["wild"],
    ["exists"] and ["join"] — the executor's observation vocabulary,
    chosen so the build-time workload classes ([Cls_eq], [Cls_ineq],
    [Cls_wild]) map onto the same axes. A log whose queries pushed no
    predicates at all falls back to ["touch"] events over the
    containers each query decoded, so a fingerprint is never empty for
    a log that did real work. *)

(** Per-container aggregate over one log. *)
type cstat = {
  c_container : string;  (** container path *)
  c_eq : int;  (** equality predicates pushed to it *)
  c_range : int;  (** range / inequality predicates *)
  c_wild : int;  (** contains / starts-with predicates *)
  c_exists : int;  (** existence tests *)
  c_join : int;  (** join sides keyed on it *)
  c_candidates : int;  (** records considered by those predicates *)
  c_matches : int;  (** records that matched *)
  c_queries : int;  (** log records that touched the container *)
  c_decoded_bytes : int;  (** payload bytes decoded for it (from heat tags) *)
}

(** A workload fingerprint: [weights] is a normalized (sums to 1.0
    when non-empty) distribution over (container, kind) pairs, sorted
    by key; [records] the number of log records aggregated;
    [containers] the per-container aggregates, sorted by path. *)
type fingerprint = {
  records : int;  (** log records aggregated *)
  weights : ((string * string) * float) list;  (** (container, kind) → share *)
  containers : cstat list;  (** per-container aggregates *)
}

(** Observed selectivity of the pushed predicates on a container:
    [matches / candidates], or [None] when nothing was pushed. *)
val selectivity : cstat -> float option

(** Parse a JSONL query log: one JSON object per non-empty line.
    Unparsable lines are skipped (a live log may have a torn tail).
    Raises [Sys_error] when the file cannot be read. *)
val load_jsonl : string -> Json.t list

(** {2 Incremental aggregation}

    The one implementation of fingerprint semantics: {!of_records}
    (the offline [xquec profile] path) and the streaming {!Watch}
    watchdog both feed queries through an {!agg}, so the two ways of
    observing a workload cannot drift apart. *)

(** One container-resolved predicate observation of a single query —
    the same vocabulary the executor emits and the query log records
    under ["predicates"]. *)
type obs = {
  ob_container : string;  (** container path *)
  ob_kind : string;  (** ["eq"], ["range"], ["wild"], ["exists"] or ["join"] *)
  ob_candidates : int;  (** records the predicate considered *)
  ob_matches : int;  (** records that matched *)
}

(** A mutable fingerprint accumulator. Not thread-safe: callers that
    share one (the watchdog) serialize access themselves. *)
type agg

(** A fresh, empty accumulator. *)
val agg_create : unit -> agg

(** Queries aggregated so far. *)
val agg_records : agg -> int

(** Fold one query into the accumulator: its predicate observations
    plus the [(container path, decoded bytes)] pairs of the containers
    it touched (the query log's ["containers"] tags). *)
val agg_add : agg -> predicates:obs list -> containers:(string * int) list -> unit

(** Fold [src] into [into] ([src] is left untouched) — how the
    watchdog combines its ring of window buckets into one rolling
    fingerprint. *)
val agg_merge : into:agg -> agg -> unit

(** Freeze the accumulator into a {!fingerprint} (normalized weights,
    containers sorted by path). The accumulator stays usable. *)
val agg_fingerprint : agg -> fingerprint

(** Decompose one parsed query-log record into {!agg_add} inputs
    (entries without a ["container"] field are dropped). *)
val record_observations : Json.t -> obs list * (string * int) list

(** Aggregate parsed query-log records into a fingerprint. *)
val of_records : Json.t list -> fingerprint

(** Build a fingerprint straight from weighted (container, kind)
    events — the bridge for build-time [Workload] declarations, which
    have weights but no log records. Weights are normalized; events
    with non-positive weight are dropped. *)
val of_weighted_events : ((string * string) * float) list -> fingerprint

(** Drift score between two fingerprints: total variation distance
    [0.5 * Σ |w1(k) - w2(k)|] over the union of their weight keys.
    0 for identical mixes, 1 for disjoint ones; symmetric. *)
val drift : fingerprint -> fingerprint -> float

(** One piece of block-size advice for a container. *)
type recommendation = {
  r_container : string;  (** container path *)
  r_action : string;  (** ["shrink"], ["grow"] or ["keep"] *)
  r_factor : float;  (** suggested multiplier on the current block size *)
  r_reason : string;  (** one-line justification *)
}

(** Per-container block-size advice. Selective point access
    (selectivity < 5 %) that heat shows as random-dominated wants
    smaller blocks (finer header pruning, factor 0.25);
    sequential-scan-dominated access (≥ 90 % sequential touches) with
    little header pruning wants larger blocks (factor 4); everything
    else keeps its size. [heat] is a [Heat.snapshot_json] value; without
    it only the selectivity rule can fire. *)
val recommend : ?heat:Json.t -> fingerprint -> recommendation list

(** Parse the ["recommendations"] array of a {!report_json} value back
    into actionable [(container path, factor)] pairs, dropping ["keep"]
    actions, non-positive factors and malformed entries — the consumer
    side of the report, used by [xquec compress --blocks-from] and
    [xquec compact --profile] to turn a committed profile into
    block-size targets. *)
val recommendations_of_report : Json.t -> (string * float) list

(** One {!cstat} as the JSON object the reports embed
    ([{container,eq,range,wild,exists,join,candidates,matches,
    selectivity,queries,decoded_bytes}]) — shared with the watchdog's
    [/watch] payload. *)
val cstat_json : cstat -> Json.t

(** The full report as JSON — what [xquec profile --json] prints:
    [{records, weights:[{container,kind,weight}], containers:[...],
    recommendations:[...]}] plus [drift] vs [baseline] when given. *)
val report_json : ?baseline:fingerprint -> ?heat:Json.t -> fingerprint -> Json.t

(** The report as an aligned human-readable table (same content as
    {!report_json}). *)
val render : ?baseline:fingerprint -> ?heat:Json.t -> fingerprint -> string
