(** Per-container / per-block access heat accounting.

    A process-wide, low-overhead tally of how the value containers are
    actually touched at query time: block fetches, block decodes
    (buffer-pool misses), header-driven skips, bytes decoded and
    skipped, and sequential-vs-random access runs. The storage layer
    calls the [note_*] hooks; everything else only reads snapshots.

    Overhead discipline: block fetches arrive once per record, so
    consecutive repeats of one (container, block) collapse into a
    single touch — the steady scan case is two plain loads and two
    compares against a process-wide last-touched pair, no atomic
    write, no domain lookup. Only block transitions pay an atomic
    increment of the per-block cell (the cells double as the touch
    counter; snapshots sum them) — no locks, no allocation on the hot
    path (the per-block tally array grows by CAS-publishing a larger
    array that shares the old cells, so concurrent bumps are never
    lost). The collapse gate is deliberately unsynchronized:
    interleaved decode workers flap it and count a few extra
    transitions, or lose a touch repeating another worker's last
    block — acceptable noise for a heat map. Run classification (did
    this transition continue a sequential run?) keeps one last-touched
    slot per domain, indexed by [Domain.self ()], so workers never
    contend on it. The whole subsystem sits behind its own atomic
    switch (default on — the bench gate proves the cost ≤ 2 %), so
    the A/B in [bench heat] and belt-and-braces opt-outs need no
    rebuild. *)

(** Immutable per-container reading of one {!snapshot}. A {e touch} is
    a block fetch request with consecutive repeats of one
    block collapsed (a scan reading 500 records of a block touches it
    once). [hits] is derived as [touches - decodes] (clamped at 0: a
    block evicted and re-decoded between collapsed repeats can decode
    more often than it transitions): a touch that needed no decode was
    served from the buffer pool. [runs] counts run-starting touches —
    a touch of a block other than the successor of the same domain's
    previously touched block of this container; [seq_touches] is the
    complement ([touches - runs], clamped at 0): touches that
    continued a sequential run. *)
type stat = {
  uid : int;  (** buffer-pool uid of the container *)
  label : string;  (** container path, e.g. ["/site/people/person/name/#text"] *)
  blocks : int;  (** block count at registration (0 when unknown) *)
  touches : int;  (** block fetch requests (hits + decodes) *)
  decodes : int;  (** blocks actually decoded (pool misses) *)
  hits : int;  (** [touches - decodes], clamped at 0 *)
  header_skips : int;  (** blocks skipped on header min/max alone *)
  bytes_decoded : int;  (** compressed payload bytes decoded *)
  bytes_skipped : int;  (** compressed payload bytes never decoded *)
  seq_touches : int;  (** touches continuing a sequential run *)
  runs : int;  (** non-sequential (run-starting) touches *)
}

(** Whether accounting is currently on. *)
val enabled : unit -> bool

(** Turn accounting on or off (snapshot/reset work regardless). *)
val set_enabled : bool -> unit

(** [register ~uid ~label ~blocks] (re)announces a container: fixes
    the human label and block count shown in snapshots. Counters of an
    already-registered uid are preserved (recompression re-registers
    with a fresh uid). Called by the storage layer on build and load. *)
val register : uid:int -> label:string -> blocks:int -> unit

(** The calling domain's last-touched [(uid, block)] pair, as recorded
    by its run-detection slot ([(-1, -1)] before any touch). The storage
    layer's sequential prefetcher reads this {e before} its own
    {!note_touch} to decide whether the current fetch continues a run.
    With accounting {!set_enabled} off the slots never update and the
    reading goes stale — callers must treat it as advisory only. *)
val domain_last : unit -> int * int

(** Record a block fetch request. Consecutive repeats of the same
    block collapse into one touch; a transition
    classifies as sequential or run-starting and bumps the per-block
    tally. Unregistered uids are registered on the fly with a
    placeholder label. *)
val note_touch : uid:int -> blk:int -> unit

(** Record an actual block decode of [bytes] compressed payload bytes
    (called from the buffer-pool miss path, possibly on a worker
    domain). *)
val note_decode : uid:int -> blk:int -> bytes:int -> unit

(** Record [blocks] header-skipped blocks totalling [bytes] payload
    bytes the query never decoded. *)
val note_skip : uid:int -> blocks:int -> bytes:int -> unit

(** Consistent-enough reading of every registered container, sorted by
    label. (Counters are read one atomic at a time; a snapshot taken
    during a query may split that query's bumps across two
    snapshots — totals over quiescent points are exact.) *)
val snapshot : unit -> stat list

(** Zero every counter and per-block tally, keeping registrations, and
    forget per-domain run state. *)
val reset : unit -> unit

(** Drop every registration outright (a process that builds many
    repositories — the bench, the tests — otherwise pays for all of
    them in every {!snapshot}). Containers touched afterwards
    re-intern lazily with a placeholder [uid:N] label, so callers
    should {!register} the containers they still care about. Use from
    a quiescent main domain only. *)
val clear : unit -> unit

(** [hot_blocks ~uid ~top] — the [top] most-touched blocks of a
    container as [(block, touches)], descending, ties by block index;
    empty for unknown uids. *)
val hot_blocks : uid:int -> top:int -> (int * int) list

(** The whole table as JSON — the [GET /heat] payload:
    [{"enabled":bool, "containers":[{container,uid,blocks,touches,
    decodes,hits,header_skips,bytes_decoded,bytes_skipped,
    seq_touches,runs,hot_blocks:[{block,touches}]}]}].
    [top_blocks] bounds the per-container hot-block list (default 8,
    [0] drops the lists). *)
val snapshot_json : ?top_blocks:int -> unit -> Json.t

(** Fold aggregate totals into the {!Metrics} registry as
    [heat.containers], [heat.touches], [heat.decodes], [heat.hits],
    [heat.header_skips], [heat.bytes_decoded], [heat.bytes_skipped],
    [heat.seq_touches] and [heat.runs] — called by the server before a
    scrape, so [/metrics] carries the totals without a second
    accounting path. *)
val publish_metrics : unit -> unit
