(* Bench regression gate: compare a fresh BENCH_results.json against the
   committed baseline with per-metric-class tolerances and produce a
   machine-readable verdict. Pure logic (JSON in, report out) so it can
   be unit-tested; the [tools/bench_gate.ml] executable is a thin CLI
   around it, and `make check` runs it in --quick mode.

   Both files have the shape
     { "experiments": { "<exp>": {...nested objects/lists/leaves...} } }
   Each experiment is flattened to dotted keys; list elements are
   labelled by an identifying field ("name", "id", "dataset", "domains"
   or "bytes") when one exists, by position otherwise, so reordering a
   result table does not break key matching but renaming a dataset
   does (as it should).

   Metric classes, decided from the key's last segment:
   - wall_s / *_s                harness wall time: always ignored
   - *_ms                        timing, lower is better; compared only
                                 in Full mode, tolerance 100% + 0.5 ms
                                 (bench machines vary; the gate is for
                                 step-change regressions, not noise)
   - *_mbps / *speedup*          timing, higher is better; Full mode
                                 only, fails if it halves
   - *bytes / *blocks / counts   deterministic sizes and cardinalities:
                                 5% relative or ±1 absolute, both modes
   - strings / bools             exact match, both modes (digests!)
   - everything else             ratio-like floats (compression
                                 factors, gains): 5% relative, ±0.01
                                 absolute, both modes

   A metric present in the baseline but absent in the candidate is
   [Missing] (fails the gate: a silently dropped measurement must not
   pass CI). A whole experiment absent from the candidate is skipped —
   that is how --quick runs a subset. Extra candidate metrics are
   ignored (new measurements land before their baseline). *)

type mode = Full | Quick

type status = Pass | Fail | Skipped | Ignored | Missing

type entry = {
  e_exp : string;  (* experiment name *)
  e_key : string;  (* flattened dotted key within the experiment *)
  e_status : status;
  e_detail : string;  (* human-readable values/threshold summary *)
}

type report = {
  r_passed : bool;
  r_compared : int;  (* entries actually checked (Pass + Fail) *)
  r_failed : int;
  r_missing : int;
  r_skipped : int;  (* skipped metrics plus metrics of skipped experiments *)
  r_entries : entry list;  (* every key of every baseline experiment *)
}

(* --- flattening ----------------------------------------------------- *)

(* Leaf = anything that is not an object or list. *)
let ident_fields = [ "name"; "id"; "dataset"; "domains"; "bytes" ]

let leaf_label (j : Json.t) : string option =
  match j with
  | Json.Str s -> Some s
  | Json.Num n -> Some (Json.number_to_string n)
  | _ -> None

let element_label (j : Json.t) (idx : int) : string =
  match j with
  | Json.Obj fields ->
    let rec first = function
      | [] -> string_of_int idx
      | f :: rest -> (
        match List.assoc_opt f fields with
        | Some v -> (match leaf_label v with Some s -> s | None -> first rest)
        | None -> first rest)
    in
    first ident_fields
  | _ -> string_of_int idx

let rec flatten (prefix : string) (j : Json.t) (acc : (string * Json.t) list) :
    (string * Json.t) list =
  let join k = if prefix = "" then k else prefix ^ "." ^ k in
  match j with
  | Json.Obj fields -> List.fold_left (fun acc (k, v) -> flatten (join k) v acc) acc fields
  | Json.List items ->
    let _, acc =
      List.fold_left
        (fun (i, acc) item ->
          (i + 1, flatten (Printf.sprintf "%s[%s]" prefix (element_label item i)) item acc))
        (0, acc) items
    in
    acc
  | leaf -> (prefix, leaf) :: acc

(* oldest-first, stable across runs *)
let flatten_experiment (j : Json.t) : (string * Json.t) list = List.rev (flatten "" j [])

(* --- classification -------------------------------------------------- *)

type metric_class =
  | C_ignore
  | C_timing_lower  (* lower is better: *_ms *)
  | C_timing_higher  (* higher is better: *_mbps, speedups *)
  | C_count  (* deterministic sizes/cardinalities *)
  | C_ratio  (* ratio-like floats *)
  | C_exact  (* strings, bools *)

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let count_suffixes =
  [
    "bytes"; "blocks"; "count"; "records"; "elements"; "attributes"; "sets"; "depth";
    "tags"; "operators"; "inserts"; "misses"; "hits"; "waits"; "evictions"; "_kb";
    "domains"; "runs"; "queries";
  ]

(* last dotted segment, list labels stripped: "cache.query[range].cold_ms"
   -> "cold_ms" *)
let leaf_of_key (key : string) : string =
  let seg =
    match String.rindex_opt key '.' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  match String.index_opt seg '[' with Some i -> String.sub seg 0 i | None -> seg

let classify (key : string) (v : Json.t) : metric_class =
  match v with
  | Json.Str _ | Json.Bool _ | Json.Null -> C_exact
  | _ ->
    let leaf = String.lowercase_ascii (leaf_of_key key) in
    if leaf = "wall_s" || has_suffix leaf "_s" then C_ignore
    else if has_suffix leaf "_ms" then C_timing_lower
    else if has_suffix leaf "_mbps" || contains leaf "speedup" then C_timing_higher
    else if List.exists (fun suf -> has_suffix leaf suf) count_suffixes then C_count
    else C_ratio

(* --- comparison ------------------------------------------------------ *)

let num = function Json.Num n -> Some n | _ -> None

let fmt = Json.number_to_string

let compare_metric ~(mode : mode) (key : string) (base : Json.t) (cand : Json.t) :
    status * string =
  match classify key base with
  | C_ignore -> (Ignored, "harness wall time")
  | C_exact ->
    let b = Json.to_string base and c = Json.to_string cand in
    if b = c then (Pass, "exact " ^ b)
    else (Fail, Printf.sprintf "exact mismatch: baseline %s, candidate %s" b c)
  | (C_timing_lower | C_timing_higher) when mode = Quick ->
    (Skipped, "timing skipped in quick mode")
  | cls -> (
    match (num base, num cand) with
    | Some b, Some c -> (
      match cls with
      | C_timing_lower ->
        let slack = Float.max 0.5 (Float.abs b) in
        if c -. b > slack then
          ( Fail,
            Printf.sprintf "slower: %s ms -> %s ms (allowed +%s)" (fmt b) (fmt c)
              (fmt slack) )
        else (Pass, Printf.sprintf "%s ms -> %s ms" (fmt b) (fmt c))
      | C_timing_higher ->
        let slack = Float.max 0.5 (0.5 *. Float.abs b) in
        if b -. c > slack then
          ( Fail,
            Printf.sprintf "degraded: %s -> %s (allowed -%s)" (fmt b) (fmt c) (fmt slack)
          )
        else (Pass, Printf.sprintf "%s -> %s" (fmt b) (fmt c))
      | C_count ->
        let slack = Float.max 1.0 (0.05 *. Float.abs b) in
        if Float.abs (c -. b) > slack then
          ( Fail,
            Printf.sprintf "count drift: %s -> %s (allowed ±%s)" (fmt b) (fmt c)
              (fmt slack) )
        else (Pass, Printf.sprintf "%s -> %s" (fmt b) (fmt c))
      | C_ratio | C_ignore | C_exact ->
        let slack = Float.max 0.01 (0.05 *. Float.abs b) in
        if Float.abs (c -. b) > slack then
          ( Fail,
            Printf.sprintf "ratio drift: %s -> %s (allowed ±%s)" (fmt b) (fmt c)
              (fmt slack) )
        else (Pass, Printf.sprintf "%s -> %s" (fmt b) (fmt c)))
    | _ ->
      ( Fail,
        Printf.sprintf "type mismatch: baseline %s, candidate %s" (Json.to_string base)
          (Json.to_string cand) ))

let experiments (j : Json.t) : (string * Json.t) list =
  match Json.member "experiments" j with Some (Json.Obj fields) -> fields | _ -> []

let compare_results ~(mode : mode) ~(baseline : Json.t) ~(candidate : Json.t) : report =
  let cand_exps = experiments candidate in
  let entries =
    List.concat_map
      (fun (exp, base_body) ->
        match List.assoc_opt exp cand_exps with
        | None ->
          (* whole experiment absent: a quick run covering a subset *)
          List.map
            (fun (key, _) ->
              { e_exp = exp; e_key = key; e_status = Skipped;
                e_detail = "experiment not in candidate" })
            (flatten_experiment base_body)
        | Some cand_body ->
          let cand_flat = flatten_experiment cand_body in
          List.map
            (fun (key, bv) ->
              match List.assoc_opt key cand_flat with
              | None ->
                let status =
                  match classify key bv with C_ignore -> Ignored | _ -> Missing
                in
                { e_exp = exp; e_key = key; e_status = status;
                  e_detail = "metric missing from candidate" }
              | Some cv ->
                let status, detail = compare_metric ~mode key bv cv in
                { e_exp = exp; e_key = key; e_status = status; e_detail = detail })
            (flatten_experiment base_body))
      (experiments baseline)
  in
  let count st = List.length (List.filter (fun e -> e.e_status = st) entries) in
  let failed = count Fail and missing = count Missing in
  let compared = count Pass + failed in
  {
    r_passed = failed = 0 && missing = 0 && compared > 0;
    r_compared = compared;
    r_failed = failed;
    r_missing = missing;
    r_skipped = count Skipped;
    r_entries = entries;
  }

(* --- output ---------------------------------------------------------- *)

let status_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Skipped -> "skipped"
  | Ignored -> "ignored"
  | Missing -> "missing"

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("passed", Json.Bool r.r_passed);
      ("compared", Json.Num (float_of_int r.r_compared));
      ("failed", Json.Num (float_of_int r.r_failed));
      ("missing", Json.Num (float_of_int r.r_missing));
      ("skipped", Json.Num (float_of_int r.r_skipped));
      ( "entries",
        Json.List
          (List.filter_map
             (fun e ->
               (* the verdict file records everything that is not a
                  plain pass; passes are summarized by the counter *)
               if e.e_status = Pass then None
               else
                 Some
                   (Json.Obj
                      [
                        ("experiment", Json.Str e.e_exp);
                        ("key", Json.Str e.e_key);
                        ("status", Json.Str (status_name e.e_status));
                        ("detail", Json.Str e.e_detail);
                      ]))
             r.r_entries) );
    ]

let render (r : report) : string =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun e ->
      match e.e_status with
      | Fail | Missing ->
        line "  %s %s/%s: %s" (String.uppercase_ascii (status_name e.e_status)) e.e_exp
          e.e_key e.e_detail
      | Pass | Skipped | Ignored -> ())
    r.r_entries;
  line "bench gate: %s (%d compared, %d failed, %d missing, %d skipped)"
    (if r.r_passed then "PASS" else "FAIL")
    r.r_compared r.r_failed r.r_missing r.r_skipped;
  Buffer.contents buf
