(* Global on/off switch for the telemetry layer. Instrumentation sites
   check this single ref before doing any work, so a disabled build pays
   one load + branch per site and allocates nothing. *)

let enabled = ref false
