(** Global on/off switch for the telemetry layer. Instrumentation sites
    check this single ref before doing any work, so a disabled build
    pays one load + branch per site and allocates nothing. Flip it via
    {!Xquec_obs.set_enabled} rather than directly. *)

(** The switch; [false] by default. *)
val enabled : bool ref
