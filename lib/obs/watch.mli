(** Streaming workload watchdog: rolling windowed fingerprints inside
    the serving process.

    A ring of [windows] fixed-duration buckets, each a
    {!Profile.agg}, is fed per query by the engine's observation
    fan-in ({!observe} receives exactly the predicate observations and
    container touches the JSONL query log would record — no log
    re-parsing on the hot path). The rolling fingerprint is the merge
    of the live buckets; when a build-time baseline is declared
    ({!set_baseline}, from [Workload.fingerprint]), every {!tick}
    scores total-variation drift against it, maintains an EWMA-smoothed
    drift series, republishes {!Profile.recommend} block-size advice
    joined with the live container heat, and updates the [watch.*]
    gauges ([xquec_watch_drift], [xquec_watch_drift_ewma],
    [xquec_watch_window_records], ...).

    Because both this module and the offline [xquec profile] aggregate
    through {!Profile.agg}, a query stream observed live and the query
    log it wrote fingerprint identically (test-enforced).

    Thread-safe: the disabled path is one atomic load; everything else
    takes the module's leaf mutex. The [?now] parameters exist for
    deterministic tests; production callers omit them. *)

(** One reading of the watchdog, as published on each {!tick}.
    [w_records] is the rolling window's query count (0 from
    {!status}, which does not aggregate). Drift fields are [None]
    until a baseline is declared and the window has observations. *)
type status = {
  w_enabled : bool;
  w_window_s : float;  (** bucket duration, seconds *)
  w_windows : int;  (** ring size *)
  w_ticks : int;  (** ticks since start/reset *)
  w_last_tick : float option;  (** unix time of the last tick *)
  w_records : int;  (** queries in the rolling window *)
  w_drift : float option;  (** drift vs baseline at the last tick *)
  w_drift_ewma : float option;  (** EWMA-smoothed drift series *)
}

(** Whether the watchdog is collecting ([observe] is a no-op when
    off). Default off; [xquec serve] turns it on. *)
val enabled : unit -> bool

(** Turn collection on or off. *)
val set_enabled : bool -> unit

(** Set bucket duration ([window_seconds], > 0), ring size
    ([windows], > 0) and the EWMA smoothing factor ([alpha] in
    (0, 1]). Replaces the ring (collected observations drop). Invalid
    values leave the previous setting. *)
val configure : ?window_seconds:float -> ?windows:int -> ?alpha:float -> unit -> unit

(** Declare the build-time mix to score drift against ([None] =
    fingerprint-only mode: no drift, no drift alerts). *)
val set_baseline : Profile.fingerprint option -> unit

(** The declared baseline, if any. *)
val get_baseline : unit -> Profile.fingerprint option

(** Drop every bucket, the EWMA state and the tick counters (test
    isolation); keeps configuration, baseline and the enabled switch. *)
val reset : unit -> unit

(** Fold one query's observations into the current window bucket: the
    executor's predicate observations plus the [(container path,
    decoded bytes)] touches — the same values the query log records.
    No-op while disabled. *)
val observe :
  ?now:float -> predicates:Profile.obs list -> containers:(string * int) list -> unit -> unit

(** The rolling fingerprint over the live buckets at [now]. *)
val fingerprint : ?now:float -> unit -> Profile.fingerprint

(** Close out the current window: rescore drift vs the baseline (only
    when the window has observations — an empty window leaves the
    drift and EWMA untouched, so an idle server never looks drifted),
    update the EWMA, publish the [watch.*] metrics and the live
    block-size recommendation counts, and return the fresh reading.
    Called once per window by the serve ticker; callable any time. *)
val tick : ?now:float -> unit -> status

(** Current reading without aggregating ([w_records] is 0). *)
val status : unit -> status

(** The [GET /watch] payload: status, current rolling fingerprint
    (weights + per-container stats), drift vs the baseline, and
    per-container recommendations joined with live heat. *)
val snapshot_json : ?now:float -> unit -> Json.t
