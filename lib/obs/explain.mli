(** Profiled physical plans ("EXPLAIN ANALYZE"): the executor builds a
    tree of operator nodes while it runs, each annotated with inclusive
    wall time, output cardinality, and how many predicate evaluations
    ran on compressed codes vs. decompress-then-compare (the
    distinction the paper's §3 cost model prices).

    The profile is an explicit object threaded through the evaluation
    context, so profiling works independently of the global
    {!Xquec_obs.set_enabled} switch (and costs nothing when no profile
    is attached). It is not thread-safe — one profile belongs to one
    evaluation on one domain. *)

(** One operator of the profiled plan tree. *)
type node = {
  op : string;  (** operator label, e.g. "child::item", "hash join $p" *)
  kind : string;  (** operator class for metric keys, e.g. "step", "hash_join" *)
  attrs : (string * string) list;
  mutable wall_us : float;  (** inclusive wall time *)
  mutable rows : int;  (** output cardinality; -1 = not applicable *)
  mutable cmp_compressed : int;
      (** predicate evaluations decided on compressed codes at this node *)
  mutable cmp_decompressed : int;
      (** predicate evaluations that had to decompress values *)
  mutable cache_hits : int;  (** buffer-pool hits, inclusive of children *)
  mutable cache_misses : int;  (** buffer-pool misses (block decodes) *)
  mutable cache_waits : int;
      (** buffer-pool latch waits: fetches that blocked on another
          domain's in-flight decode of the same block *)
  mutable blocks_skipped : int;  (** blocks pruned via headers, never decoded *)
  mutable decoded_bytes : int;  (** bytes charged to the pool by this subtree *)
  mutable skipped_bytes : int;
      (** compressed payload bytes of the pruned blocks *)
  mutable rev_children : node list;  (** children, newest first (see {!children}) *)
}

(** An open profile: the root node plus the stack of open operators. *)
type t = { root : node; mutable stack : node list }

(** Fresh profile whose root operator is labelled [op]. *)
val create : ?attrs:(string * string) list -> string -> t

(** The innermost open operator (the root if none is open). *)
val current : t -> node

(** Run [f] as a child operator of the current node; [f] receives the
    fresh node so it can set rows / attach attributes. Wall time is
    inclusive of children. *)
val with_op :
  t -> ?attrs:(string * string) list -> kind:string -> string -> (node -> 'a) -> 'a

(** Set a node's output cardinality. *)
val set_rows : node -> int -> unit

(** Attribute [n] predicate evaluations to the innermost open operator. *)
val note_cmp : t -> compressed:bool -> int -> unit

(** Stamp a node's buffer-pool activity (hits/misses/latch waits/pruned
    blocks/bytes decoded, plus optionally the payload bytes of the
    pruned blocks). Like [wall_us] this is inclusive of the node's
    children: the executor records the delta of the process-wide pool
    counters around the operator's whole evaluation. *)
val set_cache :
  node ->
  ?skipped_bytes:int ->
  hits:int ->
  misses:int ->
  waits:int ->
  skipped:int ->
  decoded_bytes:int ->
  unit ->
  unit

(** Close the profile: stamp the root's wall time and cardinality and
    return the tree. *)
val finish : t -> wall_us:float -> rows:int -> node

(** A node's children in evaluation order. *)
val children : node -> node list

(** Pre-order fold over a plan tree. *)
val fold : ('a -> node -> 'a) -> 'a -> node -> 'a

(** Tree-wide predicate-evaluation totals. *)
type totals = { operators : int; compressed : int; decompressed : int }

(** Sum operator count and predicate evaluations over a tree. *)
val totals : node -> totals

(** Render the tree as the indented text EXPLAIN ANALYZE prints. *)
val render : node -> string

(** The tree as JSON (one object per node, children nested). *)
val to_json : node -> Json.t

(** Compact single-line plan shape built from operator kinds, e.g.
    ["root(step(step,predicate))"] — a stable fingerprint for grouping
    query-log records by plan. *)
val shape : node -> string

(** Compact per-operator profile for the query log: one object per
    node with only op/kind/rows/wall_ms/cmp counts (children nested),
    an order of magnitude smaller than {!to_json}. *)
val summary_json : node -> Json.t
