(** Load-generation HTTP client for the {!Expo} server — the
    test/bench counterpart of the server, under the same no-dependency
    constraint. One blocking request for tests ({!request}), and a
    select(2)-multiplexed concurrent driver ({!drive}) that simulates
    hundreds of clients from a single domain (a domain per client
    would hit OCaml's ~128-domain process limit long before the
    serving bench's client counts). *)

(** A parsed reply: status code and body. A connection that died
    before any bytes arrived parses as [{ r_status = 0; r_body = "" }]. *)
type reply = { r_status : int; r_body : string }

(** One completed request from {!drive}: which simulated client issued
    it, its 0-based sequence number within that client, and the
    reply. *)
type outcome = {
  o_client : int;
  o_seq : int;
  o_reply : reply;
}

(** [request ~port target] issues one blocking HTTP request over a
    fresh connection to [host] (default 127.0.0.1) and reads to EOF.
    [meth] defaults to [GET] ([POST] etc. with a [body] send
    [Content-Length]). Raises [Unix.Unix_error] if the connect
    fails. *)
val request :
  ?host:string -> port:int -> ?meth:string -> ?body:string -> string -> reply

(** [drive ~port ~clients ~requests_per_client ~target ()] runs
    [clients] simulated clients concurrently, each issuing
    [requests_per_client] sequential requests (a client opens its next
    connection only after its previous reply completes); [target
    client seq] supplies [(meth, target, body)] for each request. All
    connections are multiplexed on the calling domain. Returns one
    {!outcome} per completed request in (client, seq) order — a
    deterministic ordering regardless of arrival interleaving, so
    callers can digest the bodies and compare against a sequential
    run. Connections refused or reset before a reply yield
    [r_status = 0]; if the server vanishes entirely, remaining
    requests are dropped after a 5 s select timeout. *)
val drive :
  ?host:string ->
  port:int ->
  clients:int ->
  requests_per_client:int ->
  target:(int -> int -> string * string * string) ->
  unit ->
  outcome list
