(** Structured JSONL query log: one JSON object per executed query,
    appended to a log file. The sink is chosen by {!set_path} (the
    CLI's [--query-log FILE] flag) or, when never set explicitly, by
    the [XQUEC_QUERY_LOG] environment variable read lazily on first
    use. No path means logging is off and {!append} is a no-op.

    This module owns only the sink; the record itself — schema
    documented in [docs/OBSERVABILITY.md] — is assembled by the engine,
    which is the layer that can see the executor profile, the storage
    counters and the GC.

    Thread safety: a mutex serializes path changes and appends, so
    concurrent server queries each produce exactly one untorn line. *)

(** Select the log file ([None] turns logging off). Overrides the
    environment default. *)
val set_path : string option -> unit

(** The active log file: the last {!set_path} value, or the
    [XQUEC_QUERY_LOG] environment variable if {!set_path} was never
    called. *)
val path : unit -> string option

(** Whether a log file is configured. *)
val enabled : unit -> bool

(** Append one record as a single JSON line (creating the file if
    needed). A no-op when no path is configured. *)
val append : Json.t -> unit
