(* Threshold + sustain-for-K-windows alert engine. See alert.mli.

   The engine is generic over the signal environment: [evaluate]
   receives named readings as an assoc list and knows nothing about
   where they come from (the serve layer assembles drift / error-rate /
   hit-rate signals per watchdog tick). That keeps lib/obs free of any
   dependency on the serving stack while the rules themselves stay
   declarative data.

   Hysteresis: a rule fires only after [a_sustain] consecutive
   breaching evaluations, and resolves only after [a_resolve]
   consecutive clear ones — a single good window inside a bad run (or
   vice versa) resets the opposing streak, so a flapping signal near
   the threshold cannot ring the bell on every tick. A missing signal
   leaves both streaks untouched: an empty watchdog window neither
   advances a firing nor quietly resolves an active alert.

   Concurrency: one leaf mutex guards rule state and the recent-
   transition ring. Log appends and metric flips happen after release,
   on the (single) ticker thread that calls [evaluate]. *)

type op = Gt | Lt

type rule = {
  a_name : string;
  a_signal : string;
  a_op : op;
  a_threshold : float;
  a_sustain : int;
  a_resolve : int;
}

type transition = {
  t_rule : string;
  t_event : string; (* "fired" | "resolved" *)
  t_time : float;
  t_value : float;
  t_threshold : float;
}

type state = {
  st_rule : rule;
  mutable st_breach : int; (* consecutive breaching evaluations *)
  mutable st_clear : int; (* consecutive clear evaluations *)
  mutable st_active : bool;
  mutable st_since : float option; (* fire time while active *)
  mutable st_last : float option; (* last reading seen *)
}

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let states : state list ref = ref []
let log_path : string option ref = ref None
let recent_cap = 64
let recent_ring : transition list ref = ref [] (* newest first, capped *)

let rules () = with_lock @@ fun () -> List.map (fun s -> s.st_rule) !states

let set_rules rs =
  with_lock (fun () ->
      states :=
        List.map
          (fun r ->
            { st_rule = r; st_breach = 0; st_clear = 0; st_active = false; st_since = None;
              st_last = None })
          rs;
      recent_ring := []);
  (* pre-register the per-rule gauges so every configured rule shows a
     0/1 series on /metrics from the first scrape *)
  List.iter (fun r -> Metrics.set_gauge ("alert." ^ r.a_name ^ ".active") 0.0) rs

let set_log path = with_lock @@ fun () -> log_path := path

let reset () =
  with_lock @@ fun () ->
  List.iter
    (fun s ->
      s.st_breach <- 0;
      s.st_clear <- 0;
      s.st_active <- false;
      s.st_since <- None;
      s.st_last <- None)
    !states;
  recent_ring := []

let iso8601 (t : float) : string =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let transition_json (t : transition) : Json.t =
  Json.Obj
    [
      ("ts", Json.Str (iso8601 t.t_time));
      ("unix", Json.Num t.t_time);
      ("rule", Json.Str t.t_rule);
      ("event", Json.Str t.t_event);
      ("value", Json.Num t.t_value);
      ("threshold", Json.Num t.t_threshold);
    ]

let append_log path (ts : transition list) =
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter (fun t -> output_string oc (Json.to_string (transition_json t) ^ "\n")) ts)
  with Sys_error _ -> () (* alerting must never take the server down *)

let breaches r v = match r.a_op with Gt -> v > r.a_threshold | Lt -> v < r.a_threshold

let evaluate ?now (signals : (string * float) list) : transition list =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let fired, path =
    with_lock @@ fun () ->
    let fired =
      List.filter_map
        (fun s ->
          let r = s.st_rule in
          match List.assoc_opt r.a_signal signals with
          | None -> None (* missing signal: streaks untouched *)
          | Some v ->
            s.st_last <- Some v;
            if breaches r v then begin
              s.st_breach <- s.st_breach + 1;
              s.st_clear <- 0;
              if (not s.st_active) && s.st_breach >= r.a_sustain then begin
                s.st_active <- true;
                s.st_since <- Some now;
                Some
                  { t_rule = r.a_name; t_event = "fired"; t_time = now; t_value = v;
                    t_threshold = r.a_threshold }
              end
              else None
            end
            else begin
              s.st_clear <- s.st_clear + 1;
              s.st_breach <- 0;
              if s.st_active && s.st_clear >= r.a_resolve then begin
                s.st_active <- false;
                s.st_since <- None;
                Some
                  { t_rule = r.a_name; t_event = "resolved"; t_time = now; t_value = v;
                    t_threshold = r.a_threshold }
              end
              else None
            end)
        !states
    in
    let keep l = if List.length l > recent_cap then List.filteri (fun i _ -> i < recent_cap) l else l in
    recent_ring := keep (List.rev_append fired !recent_ring);
    (fired, !log_path)
  in
  List.iter
    (fun t ->
      Metrics.set_gauge ("alert." ^ t.t_rule ^ ".active") (if t.t_event = "fired" then 1.0 else 0.0);
      Metrics.incr "alert.transitions")
    fired;
  (match path with
  | Some p when fired <> [] -> append_log p fired
  | _ -> ());
  fired

let active () =
  with_lock @@ fun () ->
  List.filter_map
    (fun s -> if s.st_active then Some (s.st_rule.a_name, Option.value s.st_since ~default:0.0) else None)
    !states

let recent () = with_lock @@ fun () -> !recent_ring

let snapshot_json () =
  let sts, ring =
    with_lock @@ fun () ->
    ( List.map
        (fun s ->
          ( s.st_rule,
            s.st_breach,
            s.st_clear,
            s.st_active,
            s.st_since,
            s.st_last ))
        !states,
      !recent_ring )
  in
  let opt_num = function Some v -> Json.Num v | None -> Json.Null in
  let rule_json (r, breach, clear, active, since, last) =
    Json.Obj
      [
        ("rule", Json.Str r.a_name);
        ("signal", Json.Str r.a_signal);
        ("op", Json.Str (match r.a_op with Gt -> ">" | Lt -> "<"));
        ("threshold", Json.Num r.a_threshold);
        ("sustain", Json.Num (float_of_int r.a_sustain));
        ("resolve", Json.Num (float_of_int r.a_resolve));
        ("active", Json.Bool active);
        ("since_unix", opt_num since);
        ("breach_streak", Json.Num (float_of_int breach));
        ("clear_streak", Json.Num (float_of_int clear));
        ("last_value", opt_num last);
      ]
  in
  Json.Obj
    [
      ("rules", Json.List (List.map rule_json sts));
      ( "active",
        Json.List
          (List.filter_map
             (fun (r, _, _, active, since, _) ->
               if active then
                 Some (Json.Obj [ ("rule", Json.Str r.a_name); ("since_unix", opt_num since) ])
               else None)
             sts) );
      ("recent", Json.List (List.map transition_json ring));
    ]
