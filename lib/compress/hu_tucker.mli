(** Hu-Tucker optimal alphabetic (order-preserving) binary codes
    (Hu & Tucker 1971) — the order-preserving baseline ALM was compared
    against in the paper (§2.1). *)

(** The source model: an alphabetic canonical code. *)
type model

(** Raised when decompressing bytes no model run produced. *)
exception Corrupt of string

(** 257: the 256 byte values plus the end-of-string symbol. *)
val symbol_count : int

(** Phase 1 of the algorithm: the combination procedure; returns the
    depth of each leaf in the optimal alphabetic tree. *)
val combine : int array -> int array

(** Rebuild an alphabetic prefix code from a valid depth sequence. *)
val alphabetic_codes : int array -> int array

(** Build a model from per-symbol code lengths ({!symbol_count}
    entries). *)
val of_lengths : int array -> model

(** Model from the byte frequencies of the training values. *)
val train : string list -> model

(** Encode a plaintext value. *)
val compress : model -> string -> string

(** Invert {!compress}. Raises {!Corrupt} on invalid input. *)
val decompress : model -> string -> string

(** Order-preserving: compare compressed values directly. *)
val compare_compressed : string -> string -> int

(** Serialize the code lengths for the repository. *)
val serialize_model : model -> string

(** Invert {!serialize_model}. Raises {!Corrupt} on invalid input. *)
val deserialize_model : string -> model

(** Serialized size in bytes (counted into the repository total). *)
val model_size : model -> int
