(** bzip2-like block compressor: BWT + MTF + zero-RLE + Huffman — the
    "generic compression algorithm (e.g. bzip)" of the paper's §3.3 and
    the per-container back end of the XMill baseline. Self-framing;
    multi-block above 256 KiB; tiny inputs skip the Huffman stage. *)

(** Raised when decompressing a malformed stream. *)
exception Corrupt of string

(** Plaintext bytes per BWT block (256 KiB). *)
val block_size : int

(** Compress arbitrary bytes (self-framing; no model needed). *)
val compress : string -> string

(** Invert {!compress}. Raises {!Corrupt} on invalid input. *)
val decompress : string -> string
