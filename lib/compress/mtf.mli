(** Move-to-front transform. *)

(** Replace each byte by its rank in a move-to-front list (length
    preserved). *)
val encode : string -> string

(** Invert {!encode}. *)
val decode : string -> string
