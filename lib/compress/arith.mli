(** Static arithmetic coding (integer Witten-Neal-Cleary) — the third
    order-preserving candidate of the paper's §2.1.

    The cumulative-frequency table lists symbols in alphabetical order
    (end-of-string first), so the code maps strings to disjoint
    sub-intervals of [0,1) in lexicographic order: byte comparison of
    zero-padded code strings coincides with plaintext comparison. *)

(** The source model: a cumulative byte-frequency table. *)
type model

(** Raised when decompressing bytes no model run produced. *)
exception Corrupt of string

(** 257: the 256 byte values plus the end-of-string symbol. *)
val symbol_count : int

(** Model from raw symbol frequencies ({!symbol_count} entries, each
    forced to at least 1). *)
val of_freqs : int array -> model

(** Model from the byte frequencies of the training values. *)
val train : string list -> model

(** Encode a plaintext value. *)
val compress : model -> string -> string

(** Invert {!compress}. Raises {!Corrupt} on invalid input. *)
val decompress : model -> string -> string

(** Order-preserving: compare compressed values directly. *)
val compare_compressed : string -> string -> int

(** Serialize the frequency table for the repository. *)
val serialize_model : model -> string

(** Invert {!serialize_model}. Raises {!Corrupt} on invalid input. *)
val deserialize_model : string -> model

(** Serialized size in bytes (counted into the repository total). *)
val model_size : model -> int
