(** Uniform codec layer: every algorithm is described by the paper's
    §3.2 tuple <d_c, c_s(F), c_a(F), eq, ineq, wild> and exposes
    train / compress / decompress over a shared source model. *)

(** The per-container compression algorithms the optimizer chooses
    among. *)
type algorithm =
  | Huffman_alg
  | Alm_alg
  | Arith_alg
  | Hu_tucker_alg
  | Bzip_alg
  | Numeric_alg

(** Every algorithm, in a fixed enumeration order. *)
val all_algorithms : algorithm list

(** Stable lowercase name ("huffman", "alm", ...), used in CLI flags and
    the repository format. *)
val algorithm_name : algorithm -> string

(** Invert {!algorithm_name}. Raises [Invalid_argument] on an unknown
    name. *)
val algorithm_of_name : string -> algorithm

(** Which predicate classes evaluate in the compressed domain. *)
type properties = { eq : bool; ineq : bool; wild : bool }

(** The <eq, ineq, wild> classification of the paper's §3.2. *)
val properties : algorithm -> properties

(** d_c: relative cost of decompressing one container record (ALM is the
    cheapest dictionary decode; bzip pays the full inverse pipeline). *)
val decompression_cost : algorithm -> float

(** A trained source model, tagged by algorithm (bzip is model-free). *)
type model =
  | M_huffman of Huffman.model
  | M_alm of Alm.model
  | M_arith of Arith.model
  | M_hu_tucker of Hu_tucker.model
  | M_bzip
  | M_numeric of Ipack.model

(** Raised when an algorithm cannot represent the values or the
    requested compressed-domain operation. *)
exception Unsupported of string

(** The algorithm a model was trained for. *)
val algorithm_of_model : model -> algorithm

(** Train a source model on container values; raises {!Unsupported}
    when the algorithm cannot represent them. *)
val train : algorithm -> string list -> model

(** Compress one value under the model. *)
val compress : model -> string -> string

(** Invert {!compress}. *)
val decompress : model -> string -> string

(** [encode_block records] packs a run of already-compressed container
    records [(code, parent)] into one block payload: varint framing plus
    an opportunistic LZSS second stage (chosen per block, whichever is
    smaller). The input order is preserved; containers rely on this to
    keep blocks code-sorted. *)
val encode_block : (string * int) array -> string

(** [decode_block ~count payload] inverts {!encode_block}. [count] must
    be the exact record count the block was encoded with (containers
    carry it in the block header). Codes come back still individually
    compressed — decoding a block does not decompress values. *)
val decode_block : count:int -> string -> (string * int) array

(** Serialized model size in bytes (the c_s(F) storage cost). *)
val model_size : model -> int

(** Valid whenever the algorithm's [eq] holds and both sides share the
    model. *)
val equal_compressed : model -> string -> string -> bool

(** Valid only when the algorithm's [ineq] property holds. *)
val compare_compressed : model -> string -> string -> int

(** Does the algorithm evaluate the given predicate class in the
    compressed domain? (Projection of {!properties}.) *)
val supports : algorithm -> [ `Eq | `Ineq | `Wild ] -> bool
