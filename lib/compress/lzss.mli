(** LZSS (LZ77 family) with a 4 KiB window and hash-chain match finder —
    stands in for the gzip second pass of the XMill baseline. *)

(** Compress arbitrary bytes (self-framing; no model needed). *)
val compress : string -> string

(** Invert {!compress}. Raises [Failure] on invalid input. *)
val decompress : string -> string
