(* Uniform codec layer: every algorithm is described by the tuple
   <d_c, c_s(F), c_a(F), eq, ineq, wild> of §3.2, and exposes
   train / compress / decompress over a shared source model. *)

type algorithm = Huffman_alg | Alm_alg | Arith_alg | Hu_tucker_alg | Bzip_alg | Numeric_alg

let all_algorithms =
  [ Huffman_alg; Alm_alg; Arith_alg; Hu_tucker_alg; Bzip_alg; Numeric_alg ]

let algorithm_name = function
  | Huffman_alg -> "huffman"
  | Alm_alg -> "alm"
  | Arith_alg -> "arith"
  | Hu_tucker_alg -> "hu-tucker"
  | Bzip_alg -> "bzip"
  | Numeric_alg -> "numeric"

let algorithm_of_name = function
  | "huffman" -> Huffman_alg
  | "alm" -> Alm_alg
  | "arith" -> Arith_alg
  | "hu-tucker" -> Hu_tucker_alg
  | "bzip" -> Bzip_alg
  | "numeric" -> Numeric_alg
  | s -> invalid_arg ("unknown algorithm: " ^ s)

(** Algorithmic properties: which predicate classes evaluate in the
    compressed domain (§3.2). *)
type properties = { eq : bool; ineq : bool; wild : bool }

let properties = function
  | Huffman_alg -> { eq = true; ineq = false; wild = true }
  | Alm_alg -> { eq = true; ineq = true; wild = false }
  | Arith_alg -> { eq = true; ineq = true; wild = false }
  | Hu_tucker_alg -> { eq = true; ineq = true; wild = true }
  | Bzip_alg -> { eq = false; ineq = false; wild = false }
  | Numeric_alg -> { eq = true; ineq = true; wild = false }

(** d_c: relative cost of decompressing one container record. ALM is
    dictionary-based and emits whole tokens, hence cheaper than bit-by-bit
    Huffman (§2.1); arithmetic decoding is the slowest; bzip pays the
    full inverse-BWT pipeline per value. *)
let decompression_cost = function
  | Numeric_alg -> 0.5
  | Alm_alg -> 1.0
  | Hu_tucker_alg -> 1.8
  | Huffman_alg -> 2.0
  | Arith_alg -> 4.0
  | Bzip_alg -> 6.0

type model =
  | M_huffman of Huffman.model
  | M_alm of Alm.model
  | M_arith of Arith.model
  | M_hu_tucker of Hu_tucker.model
  | M_bzip
  | M_numeric of Ipack.model

exception Unsupported = Ipack.Unsupported

let algorithm_of_model = function
  | M_huffman _ -> Huffman_alg
  | M_alm _ -> Alm_alg
  | M_arith _ -> Arith_alg
  | M_hu_tucker _ -> Hu_tucker_alg
  | M_bzip -> Bzip_alg
  | M_numeric _ -> Numeric_alg

(** Train a source model on container values. Raises {!Unsupported} when
    the algorithm cannot represent the values (numeric codec on text). *)
let train (alg : algorithm) (values : string list) : model =
  let build () =
    match alg with
    | Huffman_alg -> M_huffman (Huffman.train values)
    | Alm_alg -> M_alm (Alm.train values)
    | Arith_alg -> M_arith (Arith.train values)
    | Hu_tucker_alg -> M_hu_tucker (Hu_tucker.train values)
    | Bzip_alg -> M_bzip
    | Numeric_alg -> M_numeric (Ipack.train values)
  in
  if not (Xquec_obs.is_enabled ()) then build ()
  else begin
    let name = algorithm_name alg in
    Xquec_obs.Metrics.incr (Printf.sprintf "codec.%s.train_calls" name);
    Xquec_obs.Trace.with_span
      ~name:"codec.train"
      ~attrs:[ ("algorithm", name); ("values", string_of_int (List.length values)) ]
      build
  end

let compress (m : model) (value : string) : string =
  let code =
    match m with
    | M_huffman h -> Huffman.compress h value
    | M_alm a -> Alm.compress a value
    | M_arith a -> Arith.compress a value
    | M_hu_tucker h -> Hu_tucker.compress h value
    | M_bzip -> Bzip.compress value
    | M_numeric n -> Ipack.compress n value
  in
  if Xquec_obs.is_enabled () then begin
    let name = algorithm_name (algorithm_of_model m) in
    Xquec_obs.Metrics.incr (Printf.sprintf "codec.%s.encode_calls" name);
    Xquec_obs.Metrics.incr ~by:(String.length code)
      (Printf.sprintf "codec.%s.encoded_bytes" name)
  end;
  code

let decompress (m : model) (compressed : string) : string =
  let value =
    match m with
    | M_huffman h -> Huffman.decompress h compressed
    | M_alm a -> Alm.decompress a compressed
    | M_arith a -> Arith.decompress a compressed
    | M_hu_tucker h -> Hu_tucker.decompress h compressed
    | M_bzip -> Bzip.decompress compressed
    | M_numeric n -> Ipack.decompress n compressed
  in
  if Xquec_obs.is_enabled () then begin
    let name = algorithm_name (algorithm_of_model m) in
    Xquec_obs.Metrics.incr (Printf.sprintf "codec.%s.decode_calls" name);
    Xquec_obs.Metrics.incr ~by:(String.length value)
      (Printf.sprintf "codec.%s.decoded_bytes" name)
  end;
  value

(* ------------------------------------------------------------------ *)
(* Block-oriented storage API (repository format v2)                   *)
(* ------------------------------------------------------------------ *)

(* A block payload packs a run of already-compressed container records
   <code, parent> into one byte string: a 1-byte stage flag, then per
   record varint(|code|), the code bytes, varint(parent). When the LZSS
   second stage wins (codes of one path share structure, so it often
   does) the framed body is stored LZ-compressed; tiny payloads skip the
   attempt. Decoding a block is the unit of work the buffer pool caches
   and the unit the executor's min/max pruning avoids. *)

let block_stage_raw = '\000'

let block_stage_lzss = '\001'

(* below this, the LZSS attempt costs more than it can save *)
let block_lzss_threshold = 96

let encode_block (records : (string * int) array) : string =
  let body = Buffer.create 512 in
  Array.iter
    (fun (code, parent) ->
      Rle.add_varint body (String.length code);
      Buffer.add_string body code;
      Rle.add_varint body parent)
    records;
  let raw = Buffer.contents body in
  let payload =
    if String.length raw < block_lzss_threshold then String.make 1 block_stage_raw ^ raw
    else begin
      let lz = Lzss.compress raw in
      if String.length lz < String.length raw then String.make 1 block_stage_lzss ^ lz
      else String.make 1 block_stage_raw ^ raw
    end
  in
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "codec.block.encode_calls";
    Xquec_obs.Metrics.incr ~by:(String.length payload) "codec.block.encoded_bytes";
    if String.length payload > 0 && payload.[0] = block_stage_lzss then
      Xquec_obs.Metrics.incr "codec.block.lzss_blocks"
  end;
  payload

let decode_block ~(count : int) (payload : string) : (string * int) array =
  if String.length payload = 0 then invalid_arg "decode_block: empty payload";
  let body =
    match payload.[0] with
    | c when c = block_stage_raw -> String.sub payload 1 (String.length payload - 1)
    | c when c = block_stage_lzss -> Lzss.decompress (String.sub payload 1 (String.length payload - 1))
    | _ -> invalid_arg "decode_block: unknown stage flag"
  in
  let pos = ref 0 in
  let records =
    Array.init count (fun _ ->
        let (clen, p) = Rle.read_varint body !pos in
        let code = String.sub body p clen in
        let (parent, p) = Rle.read_varint body (p + clen) in
        pos := p;
        (code, parent))
  in
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "codec.block.decode_calls";
    Xquec_obs.Metrics.incr ~by:(String.length payload) "codec.block.decoded_payload_bytes"
  end;
  records

let model_size = function
  | M_huffman h -> Huffman.model_size h
  | M_alm a -> Alm.model_size a
  | M_arith a -> Arith.model_size a
  | M_hu_tucker h -> Hu_tucker.model_size h
  | M_bzip -> 0
  | M_numeric n -> Ipack.model_size n

(** Equality of plaintexts decided on compressed values; valid whenever
    the algorithm's [eq] property holds and both sides share the model. *)
let equal_compressed (m : model) a b =
  ignore m;
  String.equal a b

(** Order of plaintexts decided on compressed values; only valid when the
    algorithm's [ineq] property holds. *)
let compare_compressed (m : model) a b =
  match m with
  | M_alm _ | M_arith _ | M_hu_tucker _ | M_numeric _ -> String.compare a b
  | M_huffman _ | M_bzip -> invalid_arg "compare_compressed: order-agnostic codec"

(** Can a predicate of the given class run in the compressed domain? *)
let supports (alg : algorithm) (cls : [ `Eq | `Ineq | `Wild ]) =
  let p = properties alg in
  match cls with `Eq -> p.eq | `Ineq -> p.ineq | `Wild -> p.wild
