(** Classical Huffman coding (Huffman 1952) over bytes, with an explicit
    end-of-string symbol so individually compressed values are
    self-delimiting.

    Codes are canonical, so the source model serializes as a bare array
    of code lengths. With a shared source model, equality of plaintexts
    coincides with equality of compressed byte strings, and a plaintext
    prefix compresses to a bit-prefix of the compressed value — the
    [eq] and [wild] properties of the paper's §3.2. Order is NOT
    preserved. *)

(** The source model: a canonical Huffman code. *)
type model

(** Raised when decompressing bytes no model run produced. *)
exception Corrupt of string

(** 256 byte symbols + the end-of-string symbol. *)
val symbol_count : int

(** Optimal code lengths for a frequency table of {!symbol_count}
    entries (two-queue method). *)
val code_lengths : int array -> int array

(** Build a canonical-code model from code lengths. *)
val of_lengths : int array -> model

(** Train on values; every byte keeps a floor frequency of 1 so unseen
    values still compress. *)
val train : string list -> model

(** Train for raw-stream mode (no end-of-string symbol). *)
val train_raw : string -> model

(** Encode one value, terminated by the end-of-string symbol. *)
val compress : model -> string -> string

(** Invert {!compress}. Raises {!Corrupt} on invalid input. *)
val decompress : model -> string -> string

(** Encode a byte sequence of externally known length (no EOS). *)
val compress_raw : model -> string -> string

(** Invert {!compress_raw} given the original byte count. *)
val decompress_raw : model -> count:int -> string -> string

(** Equality in the compressed domain (both sides under one model). *)
val equal_compressed : string -> string -> bool

(** Bits of a plaintext prefix, for wildcard (prefix) matching. *)
val compress_prefix : model -> string -> string * int

(** Does [compressed] start with the given compressed prefix bits? *)
val matches_prefix : prefix_bits:string * int -> string -> bool

(** Serialize the code lengths for the repository. *)
val serialize_model : model -> string

(** Invert {!serialize_model}. Raises {!Corrupt} on invalid input. *)
val deserialize_model : string -> model

(** Serialized size in bytes (counted into the repository total). *)
val model_size : model -> int
