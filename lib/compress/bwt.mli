(** Burrows-Wheeler transform over cyclic rotations (prefix-doubling
    sort, O(n log^2 n)). *)

(** Transformed text plus the rank of the original rotation, needed to
    invert. *)
type t = { data : string; primary : int }

(** Forward transform (last column of the sorted rotation matrix). *)
val transform : string -> t

(** Invert {!transform}. *)
val inverse : t -> string
