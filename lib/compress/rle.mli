(** Zero-run-length coding for post-MTF streams, plus the varint
    primitives shared by the storage serializers. *)

(** Append an unsigned LEB128 varint to the buffer. *)
val add_varint : Buffer.t -> int -> unit

(** [read_varint s pos] returns the value and the position after it. *)
val read_varint : string -> int -> int * int

(** Collapse zero runs (bzip2's RUNA/RUNB-style bijective counting). *)
val encode : string -> string

(** Invert {!encode}. *)
val decode : string -> string
