(** ALM (Antoshenkov-Lomet-Murray) dictionary-based order-preserving
    string compression — the paper's key ingredient (§2.1, Fig. 2).

    The string space is partitioned into disjoint lexicographic
    intervals, each associated with a dictionary token (a prefix of every
    string in the interval) and a fixed-width code assigned in interval
    order. Byte comparison of compressed values coincides with plaintext
    comparison, so equality AND inequality predicates run in the
    compressed domain. A token that prefixes longer tokens receives
    several codes, one per gap between the longer tokens' regions —
    exactly the paper's Fig. 2. *)

(** The source model: an interval dictionary with code assignments. *)
type model

(** Raised when decompressing bytes no model run produced. *)
exception Corrupt of string

(** Smallest string strictly greater than every string with prefix [t],
    or [None] when no such string exists. *)
val next_prefix : string -> string option

(** Frequent-substring mining over a byte-bounded sample. *)
val mine_tokens : ?max_tokens:int -> ?sample_bytes:int -> string list -> string list

(** Build a model from an explicit token set (single bytes are always
    included, guaranteeing total coverage). *)
val of_tokens : string list -> model

(** Train on container values; the dictionary budget adapts to the
    container size so the source model never dwarfs the data. *)
val train : ?max_tokens:int -> ?sample_bytes:int -> string list -> model

(** Encode a plaintext value as a code-sequence byte string. *)
val compress : model -> string -> string

(** Invert {!compress}. Raises {!Corrupt} on invalid input. *)
val decompress : model -> string -> string

(** Order-preserving: compare compressed values directly. *)
val compare_compressed : string -> string -> int

(** Compressed equality (plain byte equality, since the code is
    injective). *)
val equal_compressed : string -> string -> bool

(** Compressed bounds for a prefix wildcard [p*]: matching values are
    exactly those in [fst, snd) of the result (an extension beyond the
    paper's wild=false classification). *)
val prefix_range : model -> string -> string * string option

(** Number of partitioning intervals. *)
val model_entries : model -> int

(** The mined (multi-byte) dictionary tokens; the model is a pure
    function of this list. *)
val model_tokens : model -> string list

(** Serialize the model (its token list) for the repository. *)
val serialize_model : model -> string

(** Invert {!serialize_model}. Raises {!Corrupt} on invalid input. *)
val deserialize_model : string -> model

(** Serialized size in bytes (counted into the repository total). *)
val model_size : model -> int
