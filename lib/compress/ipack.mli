(** Order-preserving packing for numeric containers (<type, pe>
    containers with an elementary numeric type, paper §1.1).

    Values are validated at training time (canonical integers, or
    fixed-point decimals with a uniform number of fraction digits) and
    packed as variable-length big-endian integers whose byte comparison
    coincides with numeric comparison. Round-trips the exact source
    text. *)

(** Value shape: canonical integers, or decimals with a fixed number of
    fraction digits. *)
type variant = Int | Decimal of int

(** The (tiny) source model is just the detected variant. *)
type model = { variant : variant }

(** Raised by {!train} when values are not uniformly numeric. *)
exception Unsupported of string

(** Raised when unpacking bytes no model run produced. *)
exception Corrupt of string

(** Raises {!Unsupported} when the values are not uniformly numeric. *)
val train : string list -> model

(** Pack one value's source text. *)
val compress : model -> string -> string

(** Invert {!compress}, reproducing the exact source text. Raises
    {!Corrupt} on invalid input. *)
val decompress : model -> string -> string

(** Order-preserving: byte comparison = numeric comparison. *)
val compare_compressed : string -> string -> int

(** Packed bound for comparing stored values against an arbitrary float
    constant: [`Ceil] gives the smallest representable value >= the
    constant, [`Floor] the largest <= it. *)
val pack_bound : model -> dir:[ `Ceil | `Floor ] -> float -> string

(** Packed code equal to the constant, when exactly representable. *)
val pack_exact : model -> float -> string option

(** Numeric value of a packed code. *)
val to_float : model -> string -> float

(** {2 Delta + varint sequence packing}

    Generic helpers for packing integer sequences as consecutive
    zigzag-varint deltas (first element differenced against 0). Used by
    the packed structure-tree format: sequences whose neighbours are
    close — child-entry codes, ascending record indices — shrink to
    one byte per element regardless of magnitude. *)

(** Zigzag-map an integer so small magnitudes of either sign get small
    varints (0→0, −1→1, 1→2, −2→3, …). *)
val zigzag : int -> int

(** Invert {!zigzag}. *)
val unzigzag : int -> int

(** [add_deltas buf xs] appends [|xs|] as a varint, then each element as
    the zigzag varint of its difference from the previous one. *)
val add_deltas : Buffer.t -> int array -> unit

(** [read_deltas s pos] inverts {!add_deltas}, returning the sequence
    and the offset past it. *)
val read_deltas : string -> int -> int array * int

(** Serialize the variant tag for the repository. *)
val serialize_model : model -> string

(** Invert {!serialize_model}. Raises {!Corrupt} on invalid input. *)
val deserialize_model : string -> model

(** Serialized size in bytes (counted into the repository total). *)
val model_size : model -> int
