(* Order-preserving packing for numeric containers (<type, pe> containers
   with an elementary numeric type, §1.1).

   Two variants, selected at training time by validating every value:
   - [Int]: canonical non-negative integers (no leading zeros),
     packed as 8-byte big-endian;
   - [Decimal k]: fixed-point with exactly k fraction digits, packed as
     the scaled integer.
   Both make byte comparison of packed values coincide with numeric
   comparison, and round-trip the exact source text. *)

type variant = Int | Decimal of int

type model = { variant : variant }

exception Unsupported of string
exception Corrupt of string

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let canonical_int s = is_digits s && (String.length s = 1 || s.[0] <> '0')

(* "123.45" -> Some ("123", "45"); "123" -> Some ("123", "") *)
let split_decimal s =
  match String.index_opt s '.' with
  | None -> if canonical_int s then Some (s, "") else None
  | Some i ->
    let whole = String.sub s 0 i in
    let frac = String.sub s (i + 1) (String.length s - i - 1) in
    if canonical_int whole && is_digits frac then Some (whole, frac) else None

let train (values : string list) : model =
  match values with
  | [] -> { variant = Int }
  | _ ->
    let frac_digits v =
      match split_decimal v with
      | None -> raise (Unsupported (Printf.sprintf "not numeric: %S" v))
      | Some (_, f) -> String.length f
    in
    let ks = List.map frac_digits values in
    let k = List.fold_left max 0 ks in
    if k = 0 then { variant = Int }
    else if List.for_all (fun k' -> k' = k) ks then { variant = Decimal k }
    else raise (Unsupported "mixed fraction-digit counts")

let pow10 k =
  let rec go acc k = if k = 0 then acc else go (acc * 10) (k - 1) in
  go 1 k

(* Variable-length order-preserving packing: a length byte followed by
   the value's significant big-endian bytes. Comparing (length, bytes)
   lexicographically compares the numbers: fewer significant bytes means
   a strictly smaller value. *)
let pack_u63 (v : int) : string =
  if v < 0 then raise (Corrupt "negative value");
  let rec nbytes n acc = if n = 0 then acc else nbytes (n lsr 8) (acc + 1) in
  let len = nbytes v 0 in
  String.init (len + 1) (fun i ->
      if i = 0 then Char.chr len else Char.chr ((v lsr (8 * (len - i))) land 0xff))

let unpack_u63 (s : string) : int =
  if String.length s = 0 || String.length s <> Char.code s.[0] + 1 then
    raise (Corrupt "bad packed width");
  let v = ref 0 in
  for i = 1 to String.length s - 1 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  !v

let compress (m : model) (value : string) : string =
  match split_decimal value with
  | None -> raise (Unsupported (Printf.sprintf "not numeric: %S" value))
  | Some (whole, frac) -> (
    match m.variant with
    | Int ->
      if frac <> "" then raise (Unsupported "fraction in integer container");
      pack_u63 (int_of_string whole)
    | Decimal k ->
      if String.length frac <> k then raise (Unsupported "fraction digits mismatch");
      pack_u63 ((int_of_string whole * pow10 k) + int_of_string frac))

let decompress (m : model) (packed : string) : string =
  let v = unpack_u63 packed in
  match m.variant with
  | Int -> string_of_int v
  | Decimal k ->
    let p = pow10 k in
    Printf.sprintf "%d.%0*d" (v / p) k (v mod p)

let compare_compressed (a : string) (b : string) = String.compare a b

(* Compressed-domain comparison against an arbitrary float constant: the
   query processor turns [v < 40.5] into a code-range scan using these
   bounds. All stored values are non-negative, so negative constants clamp
   to the bottom of the code space. *)

let scale_of m = match m.variant with Int -> 1 | Decimal k -> pow10 k

(** Smallest packed code of a stored value that is >= [f] (for >=/< splits
    use [`Ceil]); largest-or-equal scaled floor for [`Floor]. *)
let pack_bound (m : model) ~(dir : [ `Ceil | `Floor ]) (f : float) : string =
  let scaled = f *. float_of_int (scale_of m) in
  let v = match dir with `Ceil -> Float.ceil scaled | `Floor -> Float.floor scaled in
  let v = if v < 0.0 then 0.0 else v in
  pack_u63 (int_of_float v)

(** Packed code equal to [f], when [f] is exactly representable in this
    container's scale; [None] means no stored value can equal [f]. *)
let pack_exact (m : model) (f : float) : string option =
  let scaled = f *. float_of_int (scale_of m) in
  if Float.is_integer scaled && scaled >= 0.0 then Some (pack_u63 (int_of_float scaled))
  else None

(** Numeric value of a packed code. *)
let to_float (m : model) (packed : string) : float =
  float_of_int (unpack_u63 packed) /. float_of_int (scale_of m)

(* ------------------------------------------------------------------ *)
(* Delta + varint sequence packing                                     *)
(* ------------------------------------------------------------------ *)

(* Zigzag mapping: small-magnitude deltas of either sign become small
   varints (0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...). *)
let zigzag (d : int) : int = if d >= 0 then 2 * d else (-2 * d) - 1

let unzigzag (z : int) : int = if z land 1 = 0 then z / 2 else -((z + 1) / 2)

let add_deltas buf (xs : int array) : unit =
  Rle.add_varint buf (Array.length xs);
  let prev = ref 0 in
  Array.iter
    (fun x ->
      Rle.add_varint buf (zigzag (x - !prev));
      prev := x)
    xs

let read_deltas (s : string) (pos : int) : int array * int =
  let (n, pos) = Rle.read_varint s pos in
  let pos = ref pos in
  let prev = ref 0 in
  let xs =
    Array.init n (fun _ ->
        let (z, p) = Rle.read_varint s !pos in
        pos := p;
        prev := !prev + unzigzag z;
        !prev)
  in
  (xs, !pos)

let serialize_model (m : model) : string =
  match m.variant with
  | Int -> "\000"
  | Decimal k -> Printf.sprintf "\001%c" (Char.chr k)

let deserialize_model (s : string) : model =
  match s.[0] with
  | '\000' -> { variant = Int }
  | '\001' -> { variant = Decimal (Char.code s.[1]) }
  | _ -> raise (Corrupt "bad numeric model")

let model_size m = String.length (serialize_model m)
