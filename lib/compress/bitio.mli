(** Bit-level I/O shared by all codecs.

    Bits are written most-significant-first within each byte, so the
    byte-string comparison of two zero-padded bit streams coincides with
    the bit-sequence comparison — the property all order-preserving
    codecs in this library rely on. *)

(** Append-only bit stream. *)
module Writer : sig
  (** A growable bit buffer. *)
  type t

  (** Fresh writer; [size] is the initial byte capacity. *)
  val create : ?size:int -> unit -> t

  (** Append a single bit. *)
  val add_bit : t -> bool -> unit

  (** [add_bits w v width] writes the [width] low bits of [v], most
      significant first. *)
  val add_bits : t -> int -> int -> unit

  (** Number of bits written so far. *)
  val bit_length : t -> int

  (** Zero-pad to a byte boundary and return the bytes. *)
  val contents : t -> string
end

(** Sequential bit-stream consumer. *)
module Reader : sig
  (** A cursor over an immutable byte string. *)
  type t

  (** Raised when reading past the end of the stream. *)
  exception Out_of_bits

  (** Reader positioned at the string's first bit. *)
  val of_string : string -> t

  (** Bits left before {!Out_of_bits}. *)
  val bits_remaining : t -> int

  (** Consume one bit. *)
  val read_bit : t -> bool

  (** [read_bits r width] consumes [width] bits, most significant
      first. *)
  val read_bits : t -> int -> int
end

(** Number of bits needed to represent values in [0, n-1]; at least 1. *)
val width_for : int -> int
