(** Synthetic stand-ins for the real-life corpora of Table 1 /
    Fig. 6-left, matching each original's structural profile. *)

(** [shakespeare ~scale ()] generates a play collection (deep mixed
    content: LINE text under SPEECH/ACT/PLAY); [scale] is roughly
    megabytes of output and [seed] fixes the PRNG (default 42). *)
val shakespeare : ?seed:int -> scale:float -> unit -> string

(** [course ~scale ()] generates a university course catalog (shallow,
    attribute-heavy records), same [scale]/[seed] conventions as
    {!shakespeare}. *)
val course : ?seed:int -> scale:float -> unit -> string

(** [baseball ~scale ()] generates season statistics (wide flat
    records of numeric fields), same [scale]/[seed] conventions as
    {!shakespeare}. *)
val baseball : ?seed:int -> scale:float -> unit -> string

(** A named generated document of the corpus. *)
type dataset = { name : string; xml : string }

(** The full Fig. 6-left corpus at the default benchmark scales, in
    table order — one {!dataset} per generator above. *)
val real_life_corpus : unit -> dataset list
