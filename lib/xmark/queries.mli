(** The XMark query set (Q1-Q20) in the XQuery subset; adaptations from
    the originals are recorded per query. *)

(** One benchmark query: [id] is the XMark name ("Q1".."Q20"), [text]
    the runnable query, and [adapted] records how it deviates from the
    published original (None if verbatim). *)
type query = {
  id : string;
  description : string;
  text : string;
  adapted : string option;
}

(** All twenty queries, in XMark order. *)
val all : query list

(** Raises [Not_found] on an unknown id. *)
val by_id : string -> query

(** The Fig. 7 chart set (Q8/Q9 are reported separately). *)
val fig7_ids : string list
