(** Deterministic PRNG (xorshift64-star) for reproducible documents. *)

(** Generator state (mutable; never zero internally). *)
type t

(** [create ?seed ()] seeds a fresh generator; the default seed is
    fixed, so equal seeds always reproduce the same stream. *)
val create : ?seed:int64 -> unit -> t

(** [of_int n] is [create ~seed:(Int64.of_int n) ()]. *)
val of_int : int -> t

(** Next raw 64-bit state advance (the other draws derive from it). *)
val next : t -> int64

(** Uniform int in [0, bound). *)
val int : t -> int -> int

(** [float t bound] is a uniform float in [0, bound). *)
val float : t -> float -> float

(** Fair coin flip. *)
val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a
