(** XMark-like auction document generator (the xmlgen stand-in):
    reproduces the paper's Fig. 1 schema — regions/items, categories,
    people, open and closed auctions, IDREF links, Shakespeare-vocabulary
    descriptions including the nested parlist paths of Q15/Q16.
    [scale] is roughly megabytes of output. *)

(** Entity counts derived from a scale factor; every other population
    (bidders, watches, interests) is drawn relative to these. *)
type counts = {
  items_per_region : int;
  people : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

(** The six region names of the Fig. 1 schema, in document order. *)
val regions : string array

(** [counts_of_scale s] is the entity population at scale [s]
    (roughly [s] megabytes of generated XML), floored at one each. *)
val counts_of_scale : float -> counts

(** [generate ~scale ()] produces the complete auction document as a
    string; [seed] (default 42) fixes the PRNG so equal arguments are
    byte-reproducible. *)
val generate : ?seed:int -> scale:float -> unit -> string
