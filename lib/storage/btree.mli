(** B+ tree with integer keys — the access-support structure of §2.2,
    built over the node-record sequence. Supports point lookup, range
    folds, bulk loading and incremental insertion; page accounting feeds
    the storage-occupancy experiment. *)

(** A B+ tree mapping int keys to ['v] values. Mutable; not
    thread-safe. *)
type 'v t

(** Default fan-out (maximum children per interior page). *)
val default_order : int

(** Fresh empty tree; [order] overrides {!default_order} (minimum 3). *)
val create : ?order:int -> unit -> 'v t

(** Number of bindings. *)
val length : 'v t -> int

(** Point lookup. *)
val find : 'v t -> int -> 'v option

(** [mem t k] iff [k] is bound. *)
val mem : 'v t -> int -> bool

(** Greatest binding with key <= the argument. *)
val find_le : 'v t -> int -> (int * 'v) option

(** Insert; replaces the value on duplicate key. *)
val insert : 'v t -> int -> 'v -> unit

(** Bulk load from strictly-increasing key-sorted bindings. *)
val of_sorted_array : ?order:int -> (int * 'v) array -> 'v t

(** Fold over bindings with key in [lo, hi], in key order. *)
val fold_range : 'v t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> 'v -> 'a) -> 'a

(** Iterate over bindings with key in [lo, hi], in key order. *)
val iter_range : 'v t -> lo:int -> hi:int -> f:(int -> 'v -> unit) -> unit

(** Fold over all bindings in key order. *)
val fold : 'v t -> init:'a -> f:('a -> int -> 'v -> 'a) -> 'a

(** All bindings in key order. *)
val to_list : 'v t -> (int * 'v) list

(** Number of allocated pages (leaves + interior), for occupancy
    accounting. *)
val page_count : 'v t -> int

(** Height of the tree (1 = a single leaf). *)
val depth : 'v t -> int

(** Approximate serialized size given a per-value payload size. *)
val byte_size : 'v t -> value_bytes:('v -> int) -> int

(** Raises [Failure] when a structural invariant is violated (tests). *)
val check_invariants : 'v t -> unit
