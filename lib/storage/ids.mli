(** Node identifiers. The evaluated prototype uses simple pre-order ids
    (§5); [Structural] adds the paper's announced 3-valued
    (pre, post, level) identifiers enabling constant-time
    ancestor/descendant tests. *)

(** Simple identifier: the node's pre-order rank. *)
type simple = int

(** Structural (pre, post, level) identifiers: [a] is an ancestor of
    [d] iff [a.pre < d.pre && a.post > d.post] — no tree traversal
    needed. *)
module Structural : sig
  (** The identifier triple; [level] is the root-relative depth. *)
  type t = { pre : int; post : int; level : int }

  (** Build an identifier from its components. *)
  val make : pre:int -> post:int -> level:int -> t

  (** [is_ancestor a d] iff [a] is a proper ancestor of [d]. *)
  val is_ancestor : t -> t -> bool

  (** [is_descendant d a] iff [d] is a proper descendant of [a]. *)
  val is_descendant : t -> t -> bool

  (** [is_parent p c] iff [p] is the parent of [c] (ancestor one level
      up). *)
  val is_parent : t -> t -> bool

  (** Document order = pre-order rank comparison. *)
  val compare_doc_order : t -> t -> int

  (** Render as "(pre,post,level)" for debugging. *)
  val pp : Format.formatter -> t -> unit
end
