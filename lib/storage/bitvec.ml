(* Succinct bitvector with rank/select support (the substrate of the
   balanced-parentheses structure tree, repository format v4). Bits are
   packed 8 per byte, LSB-first within a byte; the rank directory is the
   classic two-level scheme — a cumulative popcount every superblock of
   512 bits plus a per-64-bit-block count relative to its superblock —
   so [rank] costs a couple of table lookups and at most seven byte
   popcounts, and [select] is a binary search over the directory
   followed by one in-block scan. The directories are rebuilt at load
   time; only the raw bits are serialized. *)

let bits_per_super = 512
let bits_per_block = 64
let bytes_per_block = bits_per_block / 8

(* popcount per byte value *)
let popcount8 =
  let t = Array.make 256 0 in
  for i = 1 to 255 do
    t.(i) <- t.(i lsr 1) + (i land 1)
  done;
  t

type t = {
  len : int;  (* length in bits *)
  data : Bytes.t;  (* ceil (len/8) bytes; trailing padding bits are zero *)
  super_ranks : int array;  (* ones before each superblock *)
  block_ranks : int array;  (* ones since the superblock start, per 64-bit block *)
  ones : int;
}

let length t = t.len

let ones t = t.ones

let zeros t = t.len - t.ones

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get";
  Char.code (Bytes.get t.data (i lsr 3)) lsr (i land 7) land 1 = 1

let build_directories len data =
  let nbytes = Bytes.length data in
  let nsupers = (len + bits_per_super - 1) / bits_per_super in
  let nblocks = (len + bits_per_block - 1) / bits_per_block in
  let super_ranks = Array.make (max nsupers 1) 0 in
  let block_ranks = Array.make (max nblocks 1) 0 in
  let total = ref 0 in
  let since_super = ref 0 in
  for b = 0 to nblocks - 1 do
    if b mod (bits_per_super / bits_per_block) = 0 then begin
      super_ranks.(b / (bits_per_super / bits_per_block)) <- !total;
      since_super := 0
    end;
    block_ranks.(b) <- !since_super;
    let first = b * bytes_per_block in
    for byte = first to min (first + bytes_per_block) nbytes - 1 do
      let c = popcount8.(Char.code (Bytes.get data byte)) in
      total := !total + c;
      since_super := !since_super + c
    done
  done;
  (super_ranks, block_ranks, !total)

(* Mask of the low [k] bits of a byte (k in 0..8). *)
let low_mask k = (1 lsl k) - 1

let of_bytes ~len data =
  if len < 0 || Bytes.length data <> (len + 7) / 8 then invalid_arg "Bitvec.of_bytes";
  (* zero any padding bits so byte popcounts are exact *)
  (if len land 7 <> 0 then
     let last = Bytes.length data - 1 in
     Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land low_mask (len land 7))));
  let super_ranks, block_ranks, ones = build_directories len data in
  { len; data; super_ranks; block_ranks; ones }

let init len f =
  let data = Bytes.make ((len + 7) / 8) '\000' in
  for i = 0 to len - 1 do
    if f i then
      Bytes.set data (i lsr 3)
        (Char.chr (Char.code (Bytes.get data (i lsr 3)) lor (1 lsl (i land 7))))
  done;
  of_bytes ~len data

let rank1 t i =
  if i < 0 || i > t.len then invalid_arg "Bitvec.rank1";
  if i = 0 then 0
  else begin
    let block = (i - 1) lsr 6 in
    let super = block lsr 3 in
    let r = ref (t.super_ranks.(super) + t.block_ranks.(block)) in
    let first_byte = block * bytes_per_block in
    let last_bit = i - 1 in
    let last_byte = last_bit lsr 3 in
    for byte = first_byte to last_byte - 1 do
      r := !r + popcount8.(Char.code (Bytes.get t.data byte))
    done;
    (* partial last byte: bits [0 .. last_bit land 7] *)
    r :=
      !r
      + popcount8.(Char.code (Bytes.get t.data last_byte) land low_mask ((last_bit land 7) + 1));
    !r
  end

let rank0 t i = i - rank1 t i

(* Position of the [k]-th set bit (1-based). *)
let select1 t k =
  if k < 1 || k > t.ones then invalid_arg "Bitvec.select1";
  (* binary search the superblocks: last superblock with rank < k *)
  let nsupers = (t.len + bits_per_super - 1) / bits_per_super in
  let lo = ref 0 and hi = ref (nsupers - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.super_ranks.(mid) < k then lo := mid else hi := mid - 1
  done;
  let super = !lo in
  let base = t.super_ranks.(super) in
  (* binary search the blocks of this superblock *)
  let first_block = super * (bits_per_super / bits_per_block) in
  let nblocks = (t.len + bits_per_block - 1) / bits_per_block in
  let last_block = min (first_block + (bits_per_super / bits_per_block)) nblocks - 1 in
  let lo = ref first_block and hi = ref last_block in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if base + t.block_ranks.(mid) < k then lo := mid else hi := mid - 1
  done;
  let block = !lo in
  let need = ref (k - base - t.block_ranks.(block)) in
  (* scan the block's bytes *)
  let byte = ref (block * bytes_per_block) in
  let nbytes = Bytes.length t.data in
  let result = ref (-1) in
  while !result < 0 do
    if !byte >= nbytes then invalid_arg "Bitvec.select1: directory corrupt";
    let c = Char.code (Bytes.get t.data !byte) in
    let pc = popcount8.(c) in
    if pc >= !need then begin
      (* the needed one is inside this byte *)
      let bit = ref 0 and seen = ref 0 in
      while !result < 0 do
        if c lsr !bit land 1 = 1 then begin
          incr seen;
          if !seen = !need then result := (!byte lsl 3) lor !bit
        end;
        incr bit
      done
    end
    else begin
      need := !need - pc;
      incr byte
    end
  done;
  !result

(* Position of the [k]-th clear bit (1-based). Padding bits past [len]
   read as zero but are never counted: k is bounded by {!zeros}. *)
let select0 t k =
  if k < 1 || k > zeros t then invalid_arg "Bitvec.select0";
  let zeros_before_super s = s * bits_per_super - t.super_ranks.(s) in
  let nsupers = (t.len + bits_per_super - 1) / bits_per_super in
  let lo = ref 0 and hi = ref (nsupers - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if zeros_before_super mid < k then lo := mid else hi := mid - 1
  done;
  let super = !lo in
  let zeros_before_block b = (b * bits_per_block) - (t.super_ranks.(super) + t.block_ranks.(b)) in
  let first_block = super * (bits_per_super / bits_per_block) in
  let nblocks = (t.len + bits_per_block - 1) / bits_per_block in
  let last_block = min (first_block + (bits_per_super / bits_per_block)) nblocks - 1 in
  let lo = ref first_block and hi = ref last_block in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if zeros_before_block mid < k then lo := mid else hi := mid - 1
  done;
  let block = !lo in
  let need = ref (k - zeros_before_block block) in
  let byte = ref (block * bytes_per_block) in
  let result = ref (-1) in
  while !result < 0 do
    let c = Char.code (Bytes.get t.data !byte) in
    let pc = 8 - popcount8.(c) in
    if pc >= !need then begin
      let bit = ref 0 and seen = ref 0 in
      while !result < 0 do
        if c lsr !bit land 1 = 0 then begin
          incr seen;
          if !seen = !need then result := (!byte lsl 3) lor !bit
        end;
        incr bit
      done
    end
    else begin
      need := !need - pc;
      incr byte
    end
  done;
  !result

let data_bytes t = Bytes.length t.data

(* The compact footprint of the rank directory as an on-storage design
   would lay it out: 4 bytes per superblock cumulative count, 2 bytes
   per in-superblock block count. The in-memory arrays are wider (OCaml
   ints) but are rebuilt from the raw bits at load time, so this is what
   the occupancy experiment should charge. *)
let overhead_bytes t =
  let nsupers = (t.len + bits_per_super - 1) / bits_per_super in
  let nblocks = (t.len + bits_per_block - 1) / bits_per_block in
  (4 * nsupers) + (2 * nblocks)

let serialize buf t =
  Compress.Rle.add_varint buf t.len;
  Buffer.add_bytes buf t.data

let deserialize s pos =
  let len, pos = Compress.Rle.read_varint s pos in
  let nbytes = (len + 7) / 8 in
  if pos + nbytes > String.length s then failwith "Bitvec.deserialize: truncated";
  let data = Bytes.of_string (String.sub s pos nbytes) in
  (of_bytes ~len data, pos + nbytes)

(* ------------------------------------------------------------------ *)
(* Wavelet tree over small integer codes                               *)
(* ------------------------------------------------------------------ *)

module Wavelet = struct
  type bv = t

  type t = {
    n : int;
    width : int;  (* bits per code, >= 1 *)
    levels : bv array;  (* one bitvector per bit, MSB level first *)
  }

  let length w = w.n

  let width w = w.width

  let width_for max_code =
    let rec go w = if max_code lsr w = 0 then w else go (w + 1) in
    max 1 (go 0)

  (* Pointerless, levelwise layout (Claude & Navarro): at each level the
     codes are stably partitioned by the current bit within each node's
     interval, so a node's children occupy adjacent sub-intervals of the
     next level. Intervals are recovered at query time with rank. *)
  let build ~width (codes : int array) : t =
    if width < 1 then invalid_arg "Wavelet.build";
    let n = Array.length codes in
    Array.iter
      (fun c -> if c < 0 || c lsr width <> 0 then invalid_arg "Wavelet.build: code out of range")
      codes;
    let levels = Array.make width (init 0 (fun _ -> false)) in
    (* segments: the node intervals of the current level, left to right *)
    let segments = ref [ codes ] in
    for level = 0 to width - 1 do
      let shift = width - 1 - level in
      let data = Bytes.make ((n + 7) / 8) '\000' in
      let pos = ref 0 in
      let next_segments = ref [] in
      List.iter
        (fun (seg : int array) ->
          let z = ref 0 in
          Array.iter
            (fun c ->
              if c lsr shift land 1 = 1 then
                Bytes.set data (!pos lsr 3)
                  (Char.chr (Char.code (Bytes.get data (!pos lsr 3)) lor (1 lsl (!pos land 7))))
              else incr z;
              incr pos)
            seg;
          if level < width - 1 then begin
            let zeros = Array.make !z 0 and onez = Array.make (Array.length seg - !z) 0 in
            let zi = ref 0 and oi = ref 0 in
            Array.iter
              (fun c ->
                if c lsr shift land 1 = 1 then begin
                  onez.(!oi) <- c;
                  incr oi
                end
                else begin
                  zeros.(!zi) <- c;
                  incr zi
                end)
              seg;
            next_segments := onez :: zeros :: !next_segments
          end)
        !segments;
      levels.(level) <- of_bytes ~len:n data;
      segments := List.rev !next_segments
    done;
    { n; width; levels }

  let access w i =
    if i < 0 || i >= w.n then invalid_arg "Wavelet.access";
    let code = ref 0 in
    let lo = ref 0 and hi = ref w.n and off = ref i in
    for level = 0 to w.width - 1 do
      let bv = w.levels.(level) in
      let z = rank0 bv !hi - rank0 bv !lo in
      if get bv (!lo + !off) then begin
        code := (!code lsl 1) lor 1;
        off := rank1 bv (!lo + !off) - rank1 bv !lo;
        lo := !lo + z
      end
      else begin
        code := !code lsl 1;
        off := rank0 bv (!lo + !off) - rank0 bv !lo;
        hi := !lo + z
      end
    done;
    !code

  (* Occurrences of [code] in the prefix [0, i). *)
  let rank w ~code i =
    if i < 0 || i > w.n then invalid_arg "Wavelet.rank";
    let lo = ref 0 and hi = ref w.n and off = ref i in
    (try
       for level = 0 to w.width - 1 do
         let bv = w.levels.(level) in
         let z = rank0 bv !hi - rank0 bv !lo in
         if code lsr (w.width - 1 - level) land 1 = 1 then begin
           off := rank1 bv (!lo + !off) - rank1 bv !lo;
           lo := !lo + z
         end
         else begin
           off := rank0 bv (!lo + !off) - rank0 bv !lo;
           hi := !lo + z
         end;
         if !off = 0 then raise Exit
       done
     with Exit -> ());
    !off

  (* Position of the [k]-th occurrence of [code] (1-based), if any. *)
  let select w ~code k =
    if k < 1 then invalid_arg "Wavelet.select";
    (* descend to the leaf interval, remembering the path *)
    let lo = ref 0 and hi = ref w.n in
    let path = Array.make w.width (0, false) in
    (try
       for level = 0 to w.width - 1 do
         let bv = w.levels.(level) in
         let z = rank0 bv !hi - rank0 bv !lo in
         let one = code lsr (w.width - 1 - level) land 1 = 1 in
         path.(level) <- (!lo, one);
         if one then lo := !lo + z else hi := !lo + z
       done;
       if k > !hi - !lo then raise Exit;
       (* walk back up, converting an in-interval offset to the parent *)
       let off = ref (k - 1) in
       for level = w.width - 1 downto 0 do
         let bv = w.levels.(level) in
         let plo, one = path.(level) in
         let pos =
           if one then select1 bv (rank1 bv plo + !off + 1)
           else select0 bv (rank0 bv plo + !off + 1)
         in
         off := pos - plo
       done;
       Some !off
     with Exit -> None)

  (* On-storage footprint: level bitvectors store n*width raw bits; the
     rank directories are rebuilt at load. *)
  let data_bytes w = Array.fold_left (fun acc bv -> acc + data_bytes bv) 0 w.levels

  let overhead_bytes w = Array.fold_left (fun acc bv -> acc + overhead_bytes bv) 0 w.levels

  let serialize buf w =
    Compress.Rle.add_varint buf w.n;
    Compress.Rle.add_varint buf w.width;
    Array.iter (fun bv -> Buffer.add_bytes buf bv.data) w.levels

  let deserialize s pos =
    let n, pos = Compress.Rle.read_varint s pos in
    let width, pos = Compress.Rle.read_varint s pos in
    if width < 1 || width > 62 then failwith "Wavelet.deserialize: bad width";
    let nbytes = (n + 7) / 8 in
    let pos = ref pos in
    let levels =
      Array.init width (fun _ ->
          if !pos + nbytes > String.length s then failwith "Wavelet.deserialize: truncated";
          let data = Bytes.of_string (String.sub s !pos nbytes) in
          pos := !pos + nbytes;
          of_bytes ~len:n data)
    in
    ({ n; width; levels }, !pos)
end
