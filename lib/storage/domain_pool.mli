(** Fixed pool of OCaml 5 domains used to decode container blocks in
    parallel (the unit of parallelism the block-structured containers
    were designed for).

    One process-wide pool: tasks submitted by {!run} land in a shared
    FIFO queue drained by [size ()] long-lived worker domains {e and} by
    the submitting domain itself, which helps until the queue is empty
    and then blocks on the batch's countdown latch. A pool of size [0]
    (the default when the host reports a single core) executes every
    batch on the calling domain in submission order — byte-identical to
    the engine's historical sequential behavior.

    The initial size comes from [$XQUEC_DECODE_DOMAINS] when that is set
    to a non-negative integer, and otherwise defaults to
    {!default_size}. The CLI's [--decode-domains] flag overrides it via
    {!set_size}. Worker domains are spawned lazily on the first parallel
    batch and joined from an [at_exit] hook, so a process that never
    decodes in parallel never spawns a domain.

    Thread safety: every function below may be called from any domain.
    See [docs/CONCURRENCY.md] for the full model. *)

(** A unit of work. Tasks must not themselves call {!run} (no nested
    batches from inside a task); they may block on {!Buffer_pool}
    latches. *)
type task = unit -> unit

(** One worker per spare core:
    [max 0 (Domain.recommended_domain_count () - 1)]. *)
val default_size : unit -> int

(** Number of worker domains a parallel batch will use ([0] =
    sequential fallback). *)
val size : unit -> int

(** Resize the pool. [set_size 0] restores sequential semantics. The
    current workers are joined immediately (pending tasks finish first);
    new workers are spawned lazily at the next parallel batch. Clamped
    at 0. *)
val set_size : int -> unit

(** [run tasks] executes every task and returns when all have finished.
    With [size () = 0] — or a single task — they run in order on the
    calling domain; otherwise they are queued for the workers and the
    caller helps drain the queue. If any task raises, one such exception
    is re-raised after the whole batch has completed (the others are
    dropped). *)
val run : task array -> unit

(** [submit task] enqueues one fire-and-forget task for the workers and
    returns immediately — nothing ever waits for it, so an exception it
    raises is swallowed (fallible tasks should catch their own). Returns
    [false] without running anything when the pool is sequential
    ([size () = 0]); the caller then chooses whether to run the task
    inline. Used by the sequential-scan prefetcher and the background
    compactor. *)
val submit : task -> bool

(** Cumulative pool counters (see {!snapshot}): configured size, batches
    and tasks submitted, tasks that ran on the submitting domain (the
    sequential fallback plus queue "help"), total wall-clock time spent
    inside {!run}, and the high-water shared-queue depth observed just
    after a batch was enqueued (0 until a parallel batch runs). *)
type stats = {
  p_domains : int;
  p_batches : int;
  p_tasks : int;
  p_inline : int;
  p_wall_ms : float;
  p_max_queue_depth : int;
  p_async : int;  (** fire-and-forget tasks accepted by {!submit} *)
}

(** Current counter values (atomic reads; callable from any domain). *)
val snapshot : unit -> stats

(** Zero the cumulative counters (the pool itself is untouched). *)
val reset_stats : unit -> unit
