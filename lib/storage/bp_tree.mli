(** Balanced-parentheses succinct tree over a {!Bitvec.t} — repository
    format v4's pointer-free structure tree. The document shape is 2n
    bits ('(' = open, ')' = close, document order); node ids are
    pre-order ranks, so node [i] sits at the position of the [i+1]-th
    set bit and all navigation is rank/select plus excess search
    backed by a 256-bit-block range-min directory. *)

(** A parsed balanced-parentheses sequence with navigation support. *)
type t

(** [of_bits bits] validates and indexes a parentheses sequence.
    Raises [Failure] if [bits] is not balanced (odd length, opens and
    closes out of balance, or a close before its open). *)
val of_bits : Bitvec.t -> t

(** The underlying bitvector (what the v4 image serializes). *)
val bits : t -> Bitvec.t

(** Number of nodes (half the bit length). *)
val node_count : t -> int

(** [excess t j] is opens minus closes in positions [0, j]; [excess t
    (-1) = 0]. The depth of the node opened at [j] plus one, when bit
    [j] is an open. *)
val excess : t -> int -> int

(** [pos_of_node t i]: bit position of node [i]'s open parenthesis.
    Raises [Invalid_argument] unless [0 <= i < node_count t]. *)
val pos_of_node : t -> int -> int

(** [node_of_open t p]: the node whose open parenthesis is at [p]. *)
val node_of_open : t -> int -> int

(** [findclose t p]: position of the close matching the open at [p]. *)
val findclose : t -> int -> int

(** [findopen t c]: position of the open matching the close at [c]. *)
val findopen : t -> int -> int

(** [enclose t p]: open position of the nearest enclosing node of the
    open at [p], or [None] at the root. *)
val enclose : t -> int -> int option

(** [parent t i]: parent node id, or [-1] for the root. *)
val parent : t -> int -> int

(** [depth t i]: root has depth 0. *)
val depth : t -> int -> int

(** First child in document order, if any. Always [i + 1] when present
    (pre-order numbering). *)
val first_child : t -> int -> int option

(** Next sibling in document order, if any. *)
val next_sibling : t -> int -> int option

(** All children of [i] in document order. *)
val children : t -> int -> int list

(** Number of children of [i]. *)
val degree : t -> int -> int

(** Largest node id in [i]'s subtree ([i] itself for a leaf). *)
val last_descendant : t -> int -> int

(** Nodes in [i]'s subtree, including [i]. *)
val subtree_size : t -> int -> int

(** [post_rank t i]: [i]'s 0-based position in post-order — the number
    of closes before and including [i]'s own, minus one. *)
val post_rank : t -> int -> int

(** [is_ancestor t ~ancestor ~descendant]: strict ancestorship, by
    pre-order interval containment. *)
val is_ancestor : t -> ancestor:int -> descendant:int -> bool

(** Compact directory footprint beyond the raw bits: the bitvector's
    rank directory plus 2 B of minimum-excess per 256-bit block (the
    in-memory segment tree is rebuilt at load). *)
val overhead_bytes : t -> int
