(* Compressed repository: binds the name dictionary, structure tree, value
   containers, shared source models and structure summary for one
   document, with honest byte-level serialization for the size
   experiments. *)

type t = {
  dict : Name_dict.t;
  tree : Structure_tree.t;
  containers : Container.t array;
  summary : Summary.t;
  source_name : string;
  original_size : int;  (** serialized size of the uncompressed document *)
}

let container t id = t.containers.(id)

let find_container_by_path t path =
  Array.to_list t.containers |> List.find_opt (fun c -> String.equal c.Container.path path)

(** Distinct source models (containers in the same partition share one). *)
let models (t : t) : (int * Compress.Codec.model) list =
  let seen = Hashtbl.create 16 in
  Array.fold_left
    (fun acc (c : Container.t) ->
      if Hashtbl.mem seen c.Container.model_id then acc
      else begin
        Hashtbl.add seen c.Container.model_id ();
        (c.Container.model_id, c.Container.model) :: acc
      end)
    [] t.containers
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Size accounting (§2.2 / Fig. 6)                                     *)
(* ------------------------------------------------------------------ *)

type size_breakdown = {
  name_dict_bytes : int;
  tree_bytes : int;  (** succinct (BP + wavelet) encoding — what v4 images store *)
  tree_packed_bytes : int;  (** packed (delta+varint) v3 encoding, for the fig6 delta *)
  tree_legacy_bytes : int;  (** plain-varint v2 encoding, kept for the fig6 delta *)
  containers_bytes : int;
  models_bytes : int;
  summary_bytes : int;
  index_bytes : int;
      (** navigation directories (rank/select + min-excess blocks), the v4
          counterpart of the old B+ page index *)
  total_bytes : int;  (** everything: the full repository on storage *)
  essential_bytes : int;
      (** without access-support structures: containers + models + dict +
          forward-only structure tree (no parent support, no directories,
          no summary) *)
}

let buffer_size f =
  let buf = Buffer.create 4096 in
  f buf;
  Buffer.length buf

let size_breakdown (t : t) : size_breakdown =
  let name_dict_bytes = Name_dict.serialized_size t.dict in
  let tree_bytes = buffer_size (fun b -> Structure_tree.serialize_succinct b t.tree) in
  let tree_packed_bytes = buffer_size (fun b -> Structure_tree.serialize_packed b t.tree) in
  let tree_legacy_bytes = buffer_size (fun b -> Structure_tree.serialize b t.tree) in
  let containers_bytes =
    Array.fold_left (fun acc c -> acc + buffer_size (fun b -> Container.serialize b c)) 0
      t.containers
  in
  let models_bytes =
    List.fold_left (fun acc (_, m) -> acc + Compress.Codec.model_size m) 0 (models t)
  in
  let summary_bytes = buffer_size (fun b -> Summary.serialize b t.summary) in
  let index_bytes = Structure_tree.index_bytes t.tree in
  let total_bytes =
    name_dict_bytes + tree_bytes + containers_bytes + models_bytes + summary_bytes
    + index_bytes
  in
  (* Essential = compressed values + models + dict + a forward-only tree
     (shape bits + tags + marker info, no parent support, no value
     back-pointers, no rank directories). *)
  let forward_tree_bytes = Structure_tree.forward_only_bytes t.tree in
  let container_codes_bytes =
    Array.fold_left (fun acc c -> acc + Container.compressed_bytes c) 0 t.containers
  in
  let essential_bytes =
    name_dict_bytes + forward_tree_bytes + container_codes_bytes + models_bytes
  in
  let result =
    {
      name_dict_bytes;
      tree_bytes;
      tree_packed_bytes;
      tree_legacy_bytes;
      containers_bytes;
      models_bytes;
      summary_bytes;
      index_bytes;
      total_bytes;
      essential_bytes;
    }
  in
  if Xquec_obs.is_enabled () then begin
    let g name v = Xquec_obs.Metrics.set_gauge ("repository." ^ name) (float_of_int v) in
    g "total_bytes" total_bytes;
    g "tree_bytes" tree_bytes;
    g "containers_bytes" containers_bytes;
    g "models_bytes" models_bytes;
    g "summary_bytes" summary_bytes;
    g "original_bytes" t.original_size
  end;
  result

(** Compression factor 1 - cs/os as defined in §5. *)
let compression_factor (t : t) =
  let sizes = size_breakdown t in
  1.0 -. (float_of_int sizes.total_bytes /. float_of_int t.original_size)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* Format v2+ images start with a magic; v1 images start directly with
   the varint-prefixed source name, whose length byte can never collide
   with 'X'. v2, v3 and v4 share the section layout; v3 adds one
   format-flags byte right after the magic (bit 0 = structure tree
   stored in the packed delta+varint encoding) and always uses the
   block container encoding; v4 keeps the flags byte and sets bit 1
   instead (structure tree stored succinctly: BP bitvector + wavelet
   tags). New images are written as v4 by default — the kill switch is
   [set_default_format `V3] (the CLI's [--format v3]) or the
   XQUEC_FORMAT=v3 environment variable. v1 (records inline), v2
   (block containers, legacy tree) and v3 (packed tree) still load
   byte-for-byte. *)
let v2_magic = "XQC\x02"

let v3_magic = "XQC\x03"

let v4_magic = "XQC\x04"

let flag_packed_tree = 1

let flag_succinct_tree = 2

type format = [ `V3 | `V4 ]

let forced_format : format option ref = ref None

let set_default_format f = forced_format := Some f

let default_format () : format =
  match !forced_format with
  | Some f -> f
  | None -> (
    match Sys.getenv_opt "XQUEC_FORMAT" with
    | Some "v3" -> `V3
    | Some "v4" | None -> `V4
    | Some other -> failwith (Printf.sprintf "XQUEC_FORMAT=%s: expected v3 or v4" other))

let serialize ?format (t : t) : string =
  let format = match format with Some f -> f | None -> default_format () in
  Xquec_obs.Trace.with_span ~name:"repository.serialize"
    ~attrs:[ ("source", t.source_name) ]
  @@ fun () ->
  let buf = Buffer.create (1 lsl 16) in
  let add_varint = Compress.Rle.add_varint in
  let add_str s =
    add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  (match format with
  | `V3 ->
    Buffer.add_string buf v3_magic;
    Buffer.add_char buf (Char.chr flag_packed_tree)
  | `V4 ->
    Buffer.add_string buf v4_magic;
    Buffer.add_char buf (Char.chr flag_succinct_tree));
  add_str t.source_name;
  add_varint buf t.original_size;
  (* name dictionary *)
  let names = Name_dict.to_list t.dict in
  add_varint buf (List.length names);
  List.iter add_str names;
  (* source models *)
  let ms = models t in
  add_varint buf (List.length ms);
  List.iter
    (fun (id, m) ->
      add_varint buf id;
      add_str (Compress.Codec.algorithm_name (Compress.Codec.algorithm_of_model m));
      let body =
        match m with
        | Compress.Codec.M_huffman h -> Compress.Huffman.serialize_model h
        | Compress.Codec.M_alm a -> Compress.Alm.serialize_model a
        | Compress.Codec.M_arith a -> Compress.Arith.serialize_model a
        | Compress.Codec.M_hu_tucker h -> Compress.Hu_tucker.serialize_model h
        | Compress.Codec.M_bzip -> ""
        | Compress.Codec.M_numeric n -> Compress.Ipack.serialize_model n
      in
      add_str body)
    ms;
  (* summary first: tree value pointers are resolved against it on load *)
  Summary.serialize buf t.summary;
  (match format with
  | `V3 -> Structure_tree.serialize_packed buf t.tree
  | `V4 -> Structure_tree.serialize_succinct buf t.tree);
  add_varint buf (Array.length t.containers);
  Array.iter (fun c -> Container.serialize buf c) t.containers;
  Buffer.contents buf

let deserialize (s : string) : t =
  Xquec_obs.Trace.with_span ~name:"repository.deserialize"
    ~attrs:[ ("bytes", string_of_int (String.length s)) ]
  @@ fun () ->
  let has_magic m =
    String.length s >= String.length m && String.equal (String.sub s 0 (String.length m)) m
  in
  let is_v2 = has_magic v2_magic
  and is_v3 = has_magic v3_magic
  and is_v4 = has_magic v4_magic in
  let has_any_magic = is_v2 || is_v3 || is_v4 in
  let container_deserialize =
    if has_any_magic then Container.deserialize else Container.deserialize_v1
  in
  let read_varint = Compress.Rle.read_varint in
  let pos = ref (if has_any_magic then String.length v2_magic else 0) in
  let format_flags =
    if is_v3 || is_v4 then begin
      let f = Char.code s.[!pos] in
      incr pos;
      f
    end
    else 0
  in
  let tree_deserialize =
    if format_flags land flag_succinct_tree <> 0 then Structure_tree.deserialize_succinct
    else if format_flags land flag_packed_tree <> 0 then Structure_tree.deserialize_packed
    else Structure_tree.deserialize
  in
  let str () =
    let (n, p) = read_varint s !pos in
    let v = String.sub s p n in
    pos := p + n;
    v
  in
  let varint () =
    let (v, p) = read_varint s !pos in
    pos := p;
    v
  in
  let source_name = str () in
  let original_size = varint () in
  let dict = Name_dict.create () in
  let n_names = varint () in
  for _ = 1 to n_names do
    ignore (Name_dict.intern dict (str ()))
  done;
  let model_table : (int, Compress.Codec.model) Hashtbl.t = Hashtbl.create 16 in
  let n_models = varint () in
  for _ = 1 to n_models do
    let id = varint () in
    let alg = Compress.Codec.algorithm_of_name (str ()) in
    let body = str () in
    let model =
      match alg with
      | Compress.Codec.Huffman_alg ->
        Compress.Codec.M_huffman (Compress.Huffman.deserialize_model body)
      | Compress.Codec.Alm_alg -> Compress.Codec.M_alm (Compress.Alm.deserialize_model body)
      | Compress.Codec.Arith_alg ->
        Compress.Codec.M_arith (Compress.Arith.deserialize_model body)
      | Compress.Codec.Hu_tucker_alg ->
        Compress.Codec.M_hu_tucker (Compress.Hu_tucker.deserialize_model body)
      | Compress.Codec.Bzip_alg -> Compress.Codec.M_bzip
      | Compress.Codec.Numeric_alg ->
        Compress.Codec.M_numeric (Compress.Ipack.deserialize_model body)
    in
    Hashtbl.add model_table id model
  done;
  let (summary, p) = Summary.deserialize ~dict s !pos in
  pos := p;
  let (tree, p) = tree_deserialize s !pos in
  pos := p;
  let n_containers = varint () in
  let containers =
    Array.init n_containers (fun _ ->
        let (c, p) = container_deserialize ~models:model_table s !pos in
        pos := p;
        c)
  in
  (* resolve value-pointer container ids by walking tree and summary in
     lockstep: each node's text slots use its summary node's text
     container; an attribute node's single slot uses its own *)
  let rec resolve node (snode : Summary.node) =
    (* every value slot of a node lives in its summary node's container:
       an element's slots are its text children, an attribute node's
       single slot is its value *)
    let nvalues = Array.length (Structure_tree.value_pointers tree node) in
    if nvalues > 0 then begin
      match snode.Summary.text_container with
      | Some c ->
        for slot = 0 to nvalues - 1 do
          Structure_tree.set_value_container tree ~node ~slot ~container:c
        done
      | None -> failwith "repository: value without container"
    end;
    List.iter
      (fun child ->
        match Summary.find_child snode (Structure_tree.tag tree child) with
        | Some child_snode -> resolve child child_snode
        | None -> failwith "repository: summary does not cover the tree")
      (Structure_tree.child_nodes tree node)
  in
  (if Structure_tree.node_count tree > 0 then
     match Summary.find_child summary.Summary.root (Structure_tree.tag tree 0) with
     | Some root_snode -> resolve 0 root_snode
     | None -> failwith "repository: no root summary node");
  { dict; tree; containers; summary; source_name; original_size }
