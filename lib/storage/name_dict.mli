(** Node-name dictionary (§2.2): element and attribute names encoded on
    ceil(log2 N) bits; attribute names carry a '@' prefix. *)

(** The dictionary; mutable, grows via {!intern}. *)
type t

(** Fresh empty dictionary. *)
val create : unit -> t

(** Idempotent: returns the existing code for a known name. *)
val intern : t -> string -> int

(** Code of a name, if interned. *)
val code : t -> string -> int option

(** Raises [Invalid_argument] on an out-of-range code. *)
val name : t -> int -> string

(** Number of interned names. *)
val size : t -> int

(** Bits per encoded tag (the paper's example: 92 names on 7 bits). *)
val bits_per_code : t -> int

(** Bytes the dictionary occupies in a serialized repository. *)
val serialized_size : t -> int

(** All names in code order (code [i] = [List.nth] [i]). *)
val to_list : t -> string list
