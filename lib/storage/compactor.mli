(** Background container compaction: re-block live containers toward a
    recommended block size and swap them into the owning repository
    without stopping query traffic.

    A compaction of one container is copy-on-write:
    {!Container.reblocked} builds a fresh container (new buffer-pool
    uid, compaction epoch + 1) holding the identical record sequence,
    the repository's container slot is overwritten with a single boxed
    pointer store — a concurrent reader sees either the old or the new
    container, and both answer every query byte-identically — and the
    old container's pool entries are then released via
    {!Buffer_pool.invalidate_container} (booked as invalidations, not
    capacity evictions). Readers still holding the old container keep
    using it safely.

    Passes are serialized by an internal mutex; the asynchronous entry
    point {!request} additionally refuses overlapping requests via a
    busy flag that [GET /compact] exposes. Triggered manually by
    [xquec compact] and automatically by [xquec serve] when the drift
    watchdog's [drift_sustained] alert fires. *)

(** Outcome of one container compaction. [c_block_size_before] /
    [c_blocks_before] describe the replaced container,
    [c_block_size_after] / [c_blocks_after] the fresh one;
    [c_invalidated] is the number of buffer-pool entries the swap
    released; [c_epoch] is the fresh container's compaction epoch. *)
type result = {
  c_path : string;
  c_id : int;
  c_records : int;
  c_block_size_before : int;
  c_block_size_after : int;
  c_blocks_before : int;
  c_blocks_after : int;
  c_invalidated : int;
  c_epoch : int;
  c_wall_ms : float;
}

(** Cumulative counters across all compactions this process ran. *)
type stats = { k_compactions : int; k_blocks_rewritten : int; k_bytes_rewritten : int }

(** Current counter values (atomic reads). *)
val snapshot : unit -> stats

(** Zero the cumulative counters and keep the recent-result ring (test
    isolation). *)
val reset_stats : unit -> unit

(** The most recent compaction results, newest first (bounded ring). *)
val recent : unit -> result list

(** [plan repo recommendations] turns [(container path, factor)] pairs —
    the shape {!Xquec_obs.Profile.recommend} emits — into concrete
    [(container id, new block size)] targets: the container's current
    block size scaled by the factor and clamped via
    {!Container.clamp_block_size}. Unknown paths, empty containers,
    non-positive factors and no-op sizes (clamped size = current size)
    are dropped. *)
val plan : Repository.t -> (string * float) list -> (int * int) list

(** [compact_container repo ~id ~block_size] synchronously re-blocks
    container [id] at [block_size] (clamped) and swaps the fresh
    container into [repo]. Safe while concurrent queries read the
    repository — see the copy-on-write protocol above. Raises
    [Invalid_argument] on an out-of-range id. *)
val compact_container : Repository.t -> id:int -> block_size:int -> result

(** Run {!compact_container} for each [(id, block_size)] target in
    order, returning the per-container results. *)
val compact : Repository.t -> targets:(int * int) list -> result list

(** Asynchronously run {!compact} on the {!Domain_pool} (inline on the
    caller when the pool is sequential). Returns [false] — doing
    nothing — when [targets] is empty or a previous {!request} is still
    running; [true] means the pass was started (or already completed,
    in the inline case). Failures inside the background pass are
    swallowed; per-container outcomes appear in {!recent}. *)
val request : Repository.t -> targets:(int * int) list -> bool

(** Whether an asynchronous {!request} pass is currently running. *)
val busy : unit -> bool

(** Compactor status as JSON — the [GET /compact] payload:
    [{"busy":bool, "compactions":n, "blocks_rewritten":n,
    "bytes_rewritten":n, "recent":[...]}] with one object per
    {!result}, newest first. *)
val status_json : unit -> Xquec_obs.Json.t
