(* Structure tree (§2.2): one record per non-value node (element or
   attribute), holding its ID, tag code, children IDs and (redundantly)
   its parent ID, plus pointers to its text/attribute values in their
   containers. IDs are pre-order ranks, so they coincide with document
   order; the (pre, post, level) triple also realizes the paper's
   future-work 3-valued structural ids. *)

type t = {
  tags : int array;                 (* name-dictionary code per node *)
  parents : int array;              (* -1 for the root *)
  posts : int array;                (* post-order rank *)
  levels : int array;               (* root = 0 *)
  children : int array array;
      (* child entries in document order: an entry >= 0 is a child
         element/attribute node id; an entry < 0 is a text marker
         -(slot+1) indexing into this node's [values] *)
  values : (int * int) array array; (* (container id, record index) per node *)
  lasts : int array;                (* last descendant (pre id) per node *)
  index : int Btree.t;
      (* B+ access structure over the record sequence: sparse, one entry
         per page of [page_records] records, mapping the page's first
         node id to its slot *)
}

let page_records = 64

let build_index n =
  let pages = (n + page_records - 1) / page_records in
  Btree.of_sorted_array (Array.init pages (fun p -> (p * page_records, p * page_records)))

let node_count t = Array.length t.tags

let tag t id = t.tags.(id)
let parent t id = t.parents.(id)
let level t id = t.levels.(id)
let value_pointers t id = t.values.(id)

(** Raw child entries (node ids and text markers), document order. *)
let child_entries t id = t.children.(id)

(** Child element/attribute node ids only, document order. *)
let child_nodes t id =
  Array.to_list t.children.(id) |> List.filter (fun c -> c >= 0)

let structural_id t id =
  Ids.Structural.make ~pre:id ~post:t.posts.(id) ~level:t.levels.(id)

(** Constant-time ancestor test via the structural id extension. *)
let is_ancestor t ~ancestor ~descendant =
  ancestor < descendant && t.posts.(ancestor) > t.posts.(descendant)

(** children with a given tag code, preserving document order. *)
let children_with_tag t id tag_code =
  child_nodes t id |> List.filter (fun c -> t.tags.(c) = tag_code)

(** Last descendant (pre id) of [id]: descendants are exactly the pre ids
    in (id, last_descendant id]. *)
let last_descendant t id = t.lasts.(id)

(** All descendants of [id] (excluding [id]), document order. *)
let descendants t id =
  let stop = t.lasts.(id) in
  List.init (stop - id) (fun i -> id + 1 + i)

(** Rewrite value pointers after containers were recompressed (their
    records re-sorted): [remap cont_id] returns the old-to-new index
    permutation for that container, or None if it is unchanged. *)
let set_value_container (t : t) ~node ~slot ~container =
  let (_, idx) = t.values.(node).(slot) in
  t.values.(node).(slot) <- (container, idx)

let remap_values (t : t) (remap : int -> int array option) : unit =
  Array.iteri
    (fun node ptrs ->
      Array.iteri
        (fun slot (cont, idx) ->
          match remap cont with
          | Some perm -> t.values.(node).(slot) <- (cont, perm.(idx))
          | None -> ignore (node, ptrs))
        ptrs)
    t.values

(** Look a node up through the B+ index (the honest access path used when
    the tree is on storage): sparse index to the page, then an in-page
    scan. Array indexing is its in-memory shortcut. *)
let find t id =
  if id < 0 || id >= node_count t then None
  else
    match Btree.find_le t.index id with
    | Some (_, page_start) ->
      let rec scan slot = if slot = id then Some slot else scan (slot + 1) in
      scan page_start
    | None -> None

type builder = {
  mutable b_tags : int list;    (* reversed: id order *)
  mutable b_parents : int list;
  mutable b_posts : (int * int) list; (* (id, post) in completion order *)
  mutable b_levels : int list;
  mutable next_id : int;
  mutable next_post : int;
}

let builder () =
  { b_tags = []; b_parents = []; b_posts = []; b_levels = []; next_id = 0; next_post = 0 }

(* The builder is driven in document order: open_node returns the fresh id;
   close_node assigns the post rank. The loader accumulates child lists and
   value pointers itself (it knows them only as parsing proceeds) and hands
   them to [finish] as reversed per-node lists. *)
let open_node (b : builder) ~tag ~parent ~level : int =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.b_tags <- tag :: b.b_tags;
  b.b_parents <- parent :: b.b_parents;
  b.b_levels <- level :: b.b_levels;
  id

let close_node (b : builder) ~id =
  b.b_posts <- (id, b.next_post) :: b.b_posts;
  b.next_post <- b.next_post + 1

let next_id (b : builder) = b.next_id

(* last descendant per node, computed bottom-up (ids are pre-order, so a
   node's children have larger ids and are already resolved when we walk
   ids in decreasing order). *)
let compute_lasts (children : int array array) : int array =
  let n = Array.length children in
  let lasts = Array.make n 0 in
  for id = n - 1 downto 0 do
    let last = ref id in
    Array.iter (fun c -> if c >= 0 && lasts.(c) > !last then last := lasts.(c)) children.(id);
    lasts.(id) <- !last
  done;
  lasts

let finish (b : builder) ~(rev_children : int list array)
    ~(rev_values : (int * int) list array) : t =
  let n = b.next_id in
  let tags = Array.of_list (List.rev b.b_tags) in
  let parents = Array.of_list (List.rev b.b_parents) in
  let levels = Array.of_list (List.rev b.b_levels) in
  let posts = Array.make n 0 in
  List.iter (fun (id, post) -> posts.(id) <- post) b.b_posts;
  let children = Array.map (fun l -> Array.of_list (List.rev l)) rev_children in
  let values = Array.map (fun l -> Array.of_list (List.rev l)) rev_values in
  let lasts = compute_lasts children in
  { tags; parents; posts; levels; children; values; lasts; index = build_index n }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let serialize buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let n = node_count t in
  add_varint buf n;
  (* posts, levels and lasts are recomputed at load time; the record
     stores tag, (redundant) parent pointer, child entries and value
     pointers, as in the paper. *)
  for id = 0 to n - 1 do
    add_varint buf t.tags.(id);
    add_varint buf (id - t.parents.(id));
    add_varint buf (Array.length t.children.(id));
    (* child node ids are > id: delta-encode against id (even codes);
       text markers are encoded as odd codes *)
    Array.iter
      (fun c -> add_varint buf (if c >= 0 then 2 * (c - id) else (2 * -c) - 1))
      t.children.(id);
    add_varint buf (Array.length t.values.(id));
    (* the container id is derivable from the node's summary path, so
       only the record index is stored *)
    Array.iter (fun (_cont, idx) -> add_varint buf idx) t.values.(id)
  done

(* Packed variant (repository format v3): same logical record, but the
   child-entry codes and value record indices are stored as zigzag
   varint deltas via {!Compress.Ipack.add_deltas}. Successive child
   entries of one node have codes [2 * (c - id)] that grow by twice the
   subtree size of each sibling, so the deltas stay small no matter how
   wide the fan-out — the dominant cost of the legacy format on nodes
   like /site/people. Value record indices are ascending per node, so
   they delta-pack too. *)
let serialize_packed buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let n = node_count t in
  add_varint buf n;
  for id = 0 to n - 1 do
    add_varint buf t.tags.(id);
    add_varint buf (id - t.parents.(id));
    Compress.Ipack.add_deltas buf
      (Array.map
         (fun c -> if c >= 0 then 2 * (c - id) else (2 * -c) - 1)
         t.children.(id));
    Compress.Ipack.add_deltas buf (Array.map snd t.values.(id))
  done

(* Both readers share the post/level/lasts reconstruction; they differ
   only in how one node record is decoded. *)
let finish_arrays ~tags ~parents ~children ~values : t =
  let n = Array.length tags in
  let lasts = compute_lasts children in
  (* recompute posts and levels by a DFS over the children structure *)
  let posts = Array.make n 0 in
  let levels = Array.make n 0 in
  let next_post = ref 0 in
  let rec dfs id level =
    levels.(id) <- level;
    Array.iter (fun c -> if c >= 0 then dfs c (level + 1)) children.(id);
    posts.(id) <- !next_post;
    incr next_post
  in
  if n > 0 then dfs 0 0;
  { tags; parents; posts; levels; children; values; lasts; index = build_index n }

let deserialize (s : string) (pos : int) : t * int =
  let read_varint = Compress.Rle.read_varint in
  let (n, pos) = read_varint s pos in
  let tags = Array.make n 0 in
  let parents = Array.make n 0 in
  let children = Array.make n [||] in
  let values = Array.make n [||] in
  let pos = ref pos in
  for id = 0 to n - 1 do
    let (tag, p) = read_varint s !pos in
    let (pdelta, p) = read_varint s p in
    let (nk, p) = read_varint s p in
    let p = ref p in
    let kids =
      Array.init nk (fun _ ->
          let (d, np) = read_varint s !p in
          p := np;
          if d land 1 = 0 then id + (d / 2) else -((d + 1) / 2))
    in
    let (nv, np) = read_varint s !p in
    p := np;
    (* container ids are re-resolved against the structure summary by the
       repository loader; -1 is the placeholder *)
    let vals =
      Array.init nv (fun _ ->
          let (idx, np) = read_varint s !p in
          p := np;
          (-1, idx))
    in
    tags.(id) <- tag;
    parents.(id) <- id - pdelta;
    children.(id) <- kids;
    values.(id) <- vals;
    pos := !p
  done;
  (finish_arrays ~tags ~parents ~children ~values, !pos)

let deserialize_packed (s : string) (pos : int) : t * int =
  let read_varint = Compress.Rle.read_varint in
  let (n, pos) = read_varint s pos in
  let tags = Array.make n 0 in
  let parents = Array.make n 0 in
  let children = Array.make n [||] in
  let values = Array.make n [||] in
  let pos = ref pos in
  for id = 0 to n - 1 do
    let (tag, p) = read_varint s !pos in
    let (pdelta, p) = read_varint s p in
    let (codes, p) = Compress.Ipack.read_deltas s p in
    let (idxs, p) = Compress.Ipack.read_deltas s p in
    tags.(id) <- tag;
    parents.(id) <- id - pdelta;
    children.(id) <-
      Array.map (fun d -> if d land 1 = 0 then id + (d / 2) else -((d + 1) / 2)) codes;
    values.(id) <- Array.map (fun idx -> (-1, idx)) idxs;
    pos := p
  done;
  (finish_arrays ~tags ~parents ~children ~values, !pos)

(** Size of the B+ access structure alone (for the §2.2 occupancy
    breakdown). *)
let index_bytes (t : t) = Btree.byte_size t.index ~value_bytes:(fun _ -> 4)
