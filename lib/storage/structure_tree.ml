(* Structure tree (§2.2), succinct edition (repository format v4): the
   document shape lives in a balanced-parentheses bitvector
   ({!Bp_tree}), tag codes in a wavelet tree keyed off the name
   dictionary, and only the value pointers and text-marker positions
   remain as per-node data. IDs are pre-order ranks, so they coincide
   with document order and with the open-paren ranks of the BP
   sequence; the (pre, post, level) triple of the paper's future-work
   3-valued structural ids is answered by rank/select instead of being
   stored.

   Child entries interleave element/attribute node ids (>= 0) with text
   markers (< 0): marker -(slot+1) points at the node's value pointer
   [slot]. Markers always reference slots 0, 1, ... in document order
   (the SAX loader emits them that way), so the succinct form only
   records how many element children precede each marker. *)

type t = {
  bp : Bp_tree.t;  (* shape: one '(' ')' pair per element/attribute *)
  tags : Bitvec.Wavelet.t;  (* name-dictionary code per node, pre-order *)
  marks : int array array;
      (* per node: for text marker slot s, the number of child element
         entries before it in document order (non-decreasing) *)
  values : (int * int) array array; (* (container id, record index) per node *)
}

let node_count t = Bp_tree.node_count t.bp

let tag t id = Bitvec.Wavelet.access t.tags id
let parent t id = Bp_tree.parent t.bp id
let level t id = Bp_tree.depth t.bp id
let value_pointers t id = t.values.(id)

(** Child element/attribute node ids only, document order. *)
let child_nodes t id = Bp_tree.children t.bp id

(** First child element/attribute node, if any (always [id + 1]). *)
let first_child t id = Bp_tree.first_child t.bp id

(** Next sibling element/attribute node, if any. *)
let next_sibling t id = Bp_tree.next_sibling t.bp id

(** Nodes in the subtree of [id], including [id]. *)
let subtree_size t id = Bp_tree.subtree_size t.bp id

(** Raw child entries (node ids and text markers), document order —
    reconstructed by merging the BP children with the marker
    positions. *)
let child_entries t id =
  let kids = Array.of_list (Bp_tree.children t.bp id) in
  let mk = t.marks.(id) in
  let m = Array.length mk in
  if m = 0 then kids
  else begin
    let c = Array.length kids in
    let out = Array.make (c + m) 0 in
    let ci = ref 0 and oi = ref 0 in
    for s = 0 to m - 1 do
      while !ci < mk.(s) do
        out.(!oi) <- kids.(!ci);
        incr ci;
        incr oi
      done;
      out.(!oi) <- -(s + 1);
      incr oi
    done;
    while !ci < c do
      out.(!oi) <- kids.(!ci);
      incr ci;
      incr oi
    done;
    out
  end

let structural_id t id =
  Ids.Structural.make ~pre:id ~post:(Bp_tree.post_rank t.bp id)
    ~level:(Bp_tree.depth t.bp id)

(** Strict-ancestor test by pre-order interval containment (one
    findclose on the candidate ancestor). *)
let is_ancestor t ~ancestor ~descendant =
  Bp_tree.is_ancestor t.bp ~ancestor ~descendant

(** children with a given tag code, preserving document order. *)
let children_with_tag t id tag_code =
  child_nodes t id |> List.filter (fun c -> Bitvec.Wavelet.access t.tags c = tag_code)

(** Last descendant (pre id) of [id]: descendants are exactly the pre ids
    in (id, last_descendant id]. *)
let last_descendant t id = Bp_tree.last_descendant t.bp id

(** All descendants of [id] (excluding [id]), document order. *)
let descendants t id =
  let stop = last_descendant t id in
  List.init (stop - id) (fun i -> id + 1 + i)

(** Descendants of [id] carrying [tag_code], document order, by
    wavelet-tree rank/select over the subtree's pre-order interval —
    O(occurrences * width) instead of a scan of the whole subtree. *)
let descendants_with_tag t id tag_code =
  let stop = last_descendant t id in
  let acc = ref [] in
  let k = ref (Bitvec.Wavelet.rank t.tags ~code:tag_code (id + 1)) in
  let continue = ref true in
  while !continue do
    incr k;
    match Bitvec.Wavelet.select t.tags ~code:tag_code !k with
    | Some p when p <= stop -> acc := p :: !acc
    | _ -> continue := false
  done;
  List.rev !acc

(** Rewrite value pointers after containers were recompressed (their
    records re-sorted): [remap cont_id] returns the old-to-new index
    permutation for that container, or None if it is unchanged. *)
let set_value_container (t : t) ~node ~slot ~container =
  let (_, idx) = t.values.(node).(slot) in
  t.values.(node).(slot) <- (container, idx)

let remap_values (t : t) (remap : int -> int array option) : unit =
  Array.iteri
    (fun node ptrs ->
      Array.iteri
        (fun slot (cont, idx) ->
          match remap cont with
          | Some perm -> t.values.(node).(slot) <- (cont, perm.(idx))
          | None -> ignore (node, ptrs))
        ptrs)
    t.values

(** Look a node up through the succinct directory (the honest on-storage
    access path): select1 to the node's open parenthesis, rank1 back to
    its pre rank. Array indexing is its in-memory shortcut. *)
let find t id =
  if id < 0 || id >= node_count t then None
  else Some (Bp_tree.node_of_open t.bp (Bp_tree.pos_of_node t.bp id))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Shared assembly: turn explicit per-node arrays (from the builder or
   from a v1/v2/v3 image) into the succinct form, validating the
   pre-order and marker invariants the bitvector encoding relies on. *)
let of_arrays ~(tags : int array) ~(parents : int array)
    ~(children : int array array) ~(values : (int * int) array array) : t =
  let n = Array.length tags in
  (* text-marker positions, checking markers are sequential per node *)
  let marks =
    Array.mapi
      (fun id entries ->
        let m = Array.fold_left (fun acc e -> if e < 0 then acc + 1 else acc) 0 entries in
        if m > Array.length values.(id) then
          failwith "structure_tree: text marker without value";
        let mk = Array.make m 0 in
        let mi = ref 0 and ci = ref 0 in
        Array.iter
          (fun e ->
            if e >= 0 then incr ci
            else begin
              if -e - 1 <> !mi then failwith "structure_tree: non-sequential text markers";
              mk.(!mi) <- !ci;
              incr mi
            end)
          entries;
        mk)
      children
  in
  (* balanced-parentheses bits by an explicit-stack DFS over the child
     lists, checking ids really are pre-order ranks *)
  let data = Bytes.make (((2 * n) + 7) / 8) '\000' in
  let pos = ref 0 in
  let emit_open () =
    Bytes.set data (!pos lsr 3)
      (Char.chr (Char.code (Bytes.get data (!pos lsr 3)) lor (1 lsl (!pos land 7))));
    incr pos
  in
  let next = ref 0 in
  let visit stack id par =
    if id >= n || id <> !next then failwith "structure_tree: children not in pre-order";
    if parents.(id) <> par then failwith "structure_tree: parent pointer mismatch";
    incr next;
    emit_open ();
    stack := (id, ref 0) :: !stack
  in
  if n > 0 then begin
    let stack = ref [] in
    visit stack 0 (-1);
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (id, k) :: rest ->
        let entries = children.(id) in
        while !k < Array.length entries && entries.(!k) < 0 do
          incr k
        done;
        if !k < Array.length entries then begin
          let c = entries.(!k) in
          incr k;
          visit stack c id
        end
        else begin
          incr pos (* close: bit stays 0 *);
          stack := rest
        end
    done;
    if !next <> n then failwith "structure_tree: disconnected nodes"
  end;
  let bp = Bp_tree.of_bits (Bitvec.of_bytes ~len:(2 * n) data) in
  let width = Bitvec.Wavelet.width_for (Array.fold_left max 0 tags) in
  { bp; tags = Bitvec.Wavelet.build ~width tags; marks; values }

type builder = {
  mutable b_tags : int list; (* reversed: id order *)
  mutable b_parents : int list;
  mutable next_id : int;
}

let builder () = { b_tags = []; b_parents = []; next_id = 0 }

(* The builder is driven in document order: open_node returns the fresh id.
   The loader accumulates child lists and value pointers itself (it knows
   them only as parsing proceeds) and hands them to [finish] as reversed
   per-node lists; post ranks and levels are implicit in the BP shape. *)
let open_node (b : builder) ~tag ~parent ~level : int =
  ignore level;
  let id = b.next_id in
  b.next_id <- id + 1;
  b.b_tags <- tag :: b.b_tags;
  b.b_parents <- parent :: b.b_parents;
  id

let close_node (b : builder) ~id = ignore (b, id)

let next_id (b : builder) = b.next_id

let finish (b : builder) ~(rev_children : int list array)
    ~(rev_values : (int * int) list array) : t =
  let tags = Array.of_list (List.rev b.b_tags) in
  let parents = Array.of_list (List.rev b.b_parents) in
  let children = Array.map (fun l -> Array.of_list (List.rev l)) rev_children in
  let values = Array.map (fun l -> Array.of_list (List.rev l)) rev_values in
  of_arrays ~tags ~parents ~children ~values

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let serialize buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let n = node_count t in
  add_varint buf n;
  (* the legacy record stores tag, (redundant) parent pointer, child
     entries and value pointers, as in the paper *)
  for id = 0 to n - 1 do
    add_varint buf (tag t id);
    add_varint buf (id - parent t id);
    let kids = child_entries t id in
    add_varint buf (Array.length kids);
    (* child node ids are > id: delta-encode against id (even codes);
       text markers are encoded as odd codes *)
    Array.iter
      (fun c -> add_varint buf (if c >= 0 then 2 * (c - id) else (2 * -c) - 1))
      kids;
    add_varint buf (Array.length t.values.(id));
    (* the container id is derivable from the node's summary path, so
       only the record index is stored *)
    Array.iter (fun (_cont, idx) -> add_varint buf idx) t.values.(id)
  done

(* Packed variant (repository format v3): same logical record, but the
   child-entry codes and value record indices are stored as zigzag
   varint deltas via {!Compress.Ipack.add_deltas}. Successive child
   entries of one node have codes [2 * (c - id)] that grow by twice the
   subtree size of each sibling, so the deltas stay small no matter how
   wide the fan-out. *)
let serialize_packed buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let n = node_count t in
  add_varint buf n;
  for id = 0 to n - 1 do
    add_varint buf (tag t id);
    add_varint buf (id - parent t id);
    Compress.Ipack.add_deltas buf
      (Array.map
         (fun c -> if c >= 0 then 2 * (c - id) else (2 * -c) - 1)
         (child_entries t id));
    Compress.Ipack.add_deltas buf (Array.map snd t.values.(id))
  done

(* Succinct variant (repository format v4): the shape as the raw BP
   bitvector, tags as the wavelet tree's level bitvectors, then per
   node its value record indices (delta-packed), its marker count when
   it has values at all, and explicit marker positions only for mixed
   content (both markers and element children). Parent pointers, child
   lists, post ranks and the B+ page index are not stored — navigation
   rebuilds them from rank/select directories at load time. *)
let serialize_succinct buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let n = node_count t in
  add_varint buf n;
  Bitvec.serialize buf (Bp_tree.bits t.bp);
  Bitvec.Wavelet.serialize buf t.tags;
  for id = 0 to n - 1 do
    Compress.Ipack.add_deltas buf (Array.map snd t.values.(id));
    if Array.length t.values.(id) > 0 then begin
      let m = Array.length t.marks.(id) in
      add_varint buf m;
      if m > 0 && Bp_tree.degree t.bp id > 0 then
        Compress.Ipack.add_deltas buf t.marks.(id)
    end
  done

let deserialize_succinct (s : string) (pos : int) : t * int =
  let read_varint = Compress.Rle.read_varint in
  let (n, pos) = read_varint s pos in
  let (bits, pos) = Bitvec.deserialize s pos in
  if Bitvec.length bits <> 2 * n then failwith "structure_tree: BP length mismatch";
  let bp = Bp_tree.of_bits bits in
  let (tags, pos) = Bitvec.Wavelet.deserialize s pos in
  if Bitvec.Wavelet.length tags <> n then failwith "structure_tree: tag count mismatch";
  let values = Array.make n [||] in
  let marks = Array.make n [||] in
  let pos = ref pos in
  for id = 0 to n - 1 do
    let (idxs, p) = Compress.Ipack.read_deltas s !pos in
    pos := p;
    (* container ids are re-resolved against the structure summary by the
       repository loader; -1 is the placeholder *)
    values.(id) <- Array.map (fun idx -> (-1, idx)) idxs;
    if Array.length idxs > 0 then begin
      let (m, p) = read_varint s !pos in
      pos := p;
      if m > 0 && Bp_tree.degree bp id > 0 then begin
        let (mk, p) = Compress.Ipack.read_deltas s !pos in
        pos := p;
        if Array.length mk <> m then failwith "structure_tree: marker count mismatch";
        marks.(id) <- mk
      end
      else marks.(id) <- Array.make m 0
    end
  done;
  ({ bp; tags; marks; values }, !pos)

(* Both explicit-record readers share the array assembly; they differ
   only in how one node record is decoded. *)
let deserialize (s : string) (pos : int) : t * int =
  let read_varint = Compress.Rle.read_varint in
  let (n, pos) = read_varint s pos in
  let tags = Array.make n 0 in
  let parents = Array.make n 0 in
  let children = Array.make n [||] in
  let values = Array.make n [||] in
  let pos = ref pos in
  for id = 0 to n - 1 do
    let (tag, p) = read_varint s !pos in
    let (pdelta, p) = read_varint s p in
    let (nk, p) = read_varint s p in
    let p = ref p in
    let kids =
      Array.init nk (fun _ ->
          let (d, np) = read_varint s !p in
          p := np;
          if d land 1 = 0 then id + (d / 2) else -((d + 1) / 2))
    in
    let (nv, np) = read_varint s !p in
    p := np;
    let vals =
      Array.init nv (fun _ ->
          let (idx, np) = read_varint s !p in
          p := np;
          (-1, idx))
    in
    tags.(id) <- tag;
    parents.(id) <- id - pdelta;
    children.(id) <- kids;
    values.(id) <- vals;
    pos := !p
  done;
  (of_arrays ~tags ~parents ~children ~values, !pos)

let deserialize_packed (s : string) (pos : int) : t * int =
  let read_varint = Compress.Rle.read_varint in
  let (n, pos) = read_varint s pos in
  let tags = Array.make n 0 in
  let parents = Array.make n 0 in
  let children = Array.make n [||] in
  let values = Array.make n [||] in
  let pos = ref pos in
  for id = 0 to n - 1 do
    let (tag, p) = read_varint s !pos in
    let (pdelta, p) = read_varint s p in
    let (codes, p) = Compress.Ipack.read_deltas s p in
    let (idxs, p) = Compress.Ipack.read_deltas s p in
    tags.(id) <- tag;
    parents.(id) <- id - pdelta;
    children.(id) <-
      Array.map (fun d -> if d land 1 = 0 then id + (d / 2) else -((d + 1) / 2)) codes;
    values.(id) <- Array.map (fun idx -> (-1, idx)) idxs;
    pos := p
  done;
  (of_arrays ~tags ~parents ~children ~values, !pos)

(** Forward-only tree bytes for the essential-size experiment: shape
    bits, tag levels and text-marker info, without parent support or
    value back-pointers (and without any rank directory). *)
let forward_only_bytes (t : t) =
  let buf = Buffer.create 4096 in
  Compress.Rle.add_varint buf (node_count t);
  Bitvec.serialize buf (Bp_tree.bits t.bp);
  Bitvec.Wavelet.serialize buf t.tags;
  for id = 0 to node_count t - 1 do
    let m = Array.length t.marks.(id) in
    Compress.Rle.add_varint buf m;
    if m > 0 && Bp_tree.degree t.bp id > 0 then Compress.Ipack.add_deltas buf t.marks.(id)
  done;
  Buffer.length buf

(** Size of the navigation directories alone (rank/select and
    minimum-excess blocks over the BP bits and tag levels) — the v4
    counterpart of the old B+ page index for the §2.2 occupancy
    breakdown. *)
let index_bytes (t : t) =
  Bp_tree.overhead_bytes t.bp + Bitvec.Wavelet.overhead_bytes t.tags
