(* Value containers (§2.2): all data values found under the same
   root-to-leaf path are stored together. A container is a sequence of
   records <compressed value, parent pointer>, kept in lexicographic order
   of the compressed values — NOT document order — enabling binary search
   and 1-pass merge joins. With an order-preserving codec the code order
   coincides with the plaintext order; with Huffman it still clusters
   equal values, so equality search works in the compressed domain. *)

type kind = Text | Attribute

type record = { code : string; parent : int }

type t = {
  id : int;
  path : string;  (** root-to-leaf path expression, e.g. "/site/people/person/name/#text" *)
  kind : kind;
  mutable algorithm : Compress.Codec.algorithm;
  mutable model : Compress.Codec.model;
  mutable model_id : int;  (** containers sharing a source model share this id *)
  mutable records : record array;
  mutable plain_bytes : int;  (** total plaintext bytes (for stats / cost model) *)
}

let length t = Array.length t.records

let compressed_bytes_of records =
  Array.fold_left (fun acc r -> acc + String.length r.code) 0 records

(* Publish per-container size + codec choice under the metric naming
   scheme "container.<path>.*" (no-ops while telemetry is disabled). *)
let publish_metrics (t : t) : unit =
  if Xquec_obs.is_enabled () then begin
    let pfx = "container." ^ t.path in
    Xquec_obs.Metrics.set_gauge (pfx ^ ".encoded_bytes")
      (float_of_int (compressed_bytes_of t.records));
    Xquec_obs.Metrics.set_gauge (pfx ^ ".plain_bytes") (float_of_int t.plain_bytes);
    Xquec_obs.Metrics.set_gauge (pfx ^ ".records") (float_of_int (Array.length t.records))
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** Build a container from (value, parent-id) pairs, training a fresh
    source model with the given algorithm. *)
let build ~id ~path ~kind ~algorithm (values : (string * int) list) : t =
  let model = Compress.Codec.train algorithm (List.map fst values) in
  let records =
    List.map (fun (v, parent) -> { code = Compress.Codec.compress model v; parent }) values
    |> Array.of_list
  in
  Array.sort (fun a b -> compare (a.code, a.parent) (b.code, b.parent)) records;
  let plain_bytes = List.fold_left (fun acc (v, _) -> acc + String.length v) 0 values in
  let t = { id; path; kind; algorithm; model; model_id = id; records; plain_bytes } in
  publish_metrics t;
  t

(** All (plaintext, parent) pairs, decompressed. *)
let dump (t : t) : (string * int) list =
  Array.to_list t.records
  |> List.map (fun r -> (Compress.Codec.decompress t.model r.code, r.parent))

(** Re-compress with a new algorithm / shared model. [model] must have
    been trained on a superset of this container's values. Returns the
    permutation old record index -> new record index so callers can fix
    up value pointers into this container. *)
let recompress (t : t) ~algorithm ~model ~model_id : int array =
  let plain = dump t in
  let records =
    List.mapi
      (fun old_idx (v, parent) ->
        ({ code = Compress.Codec.compress model v; parent }, old_idx))
      plain
    |> Array.of_list
  in
  Array.sort
    (fun (a, ia) (b, ib) -> compare (a.code, a.parent, ia) (b.code, b.parent, ib))
    records;
  let remap = Array.make (Array.length records) 0 in
  Array.iteri (fun new_idx (_, old_idx) -> remap.(old_idx) <- new_idx) records;
  t.algorithm <- algorithm;
  t.model <- model;
  t.model_id <- model_id;
  t.records <- Array.map fst records;
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "container.recompressions";
    publish_metrics t
  end;
  remap

(* ------------------------------------------------------------------ *)
(* Access paths                                                        *)
(* ------------------------------------------------------------------ *)

(** ContScan: all records in compressed-value order. *)
let scan (t : t) : record array =
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "container.scans";
    Xquec_obs.Metrics.incr ~by:(Array.length t.records) "container.scanned_records"
  end;
  t.records

(* First index with code >= [code] (or length if none). *)
let lower_bound (t : t) (code : string) : int =
  let lo = ref 0 and hi = ref (Array.length t.records) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.records.(mid).code code < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with code > [code]. *)
let upper_bound (t : t) (code : string) : int =
  let lo = ref 0 and hi = ref (Array.length t.records) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.records.(mid).code code <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(** ContAccess with an equality criterion: binary search on the compressed
    code (valid whenever the algorithm supports [eq]). *)
let lookup_eq (t : t) (code : string) : record list =
  Xquec_obs.Metrics.incr "container.lookup_eq";
  let lo = lower_bound t code and hi = upper_bound t code in
  List.init (hi - lo) (fun i -> t.records.(lo + i))

(** ContAccess with an interval criterion on compressed codes (valid only
    for order-preserving algorithms). Bounds are inclusive [lo] /
    exclusive [hi]; [None] means unbounded. *)
let lookup_range (t : t) ?lo ?hi () : record list =
  Xquec_obs.Metrics.incr "container.lookup_range";
  let start = match lo with None -> 0 | Some c -> lower_bound t c in
  let stop = match hi with None -> Array.length t.records | Some c -> lower_bound t c in
  List.init (max 0 (stop - start)) (fun i -> t.records.(start + i))

let decompress_record (t : t) (r : record) : string =
  Compress.Codec.decompress t.model r.code

(** Compress a query constant against this container's source model, for
    compressed-domain comparisons. *)
let compress_constant (t : t) (v : string) : string =
  Compress.Codec.compress t.model v

(* ------------------------------------------------------------------ *)
(* Size accounting / serialization                                     *)
(* ------------------------------------------------------------------ *)

let compressed_bytes (t : t) = compressed_bytes_of t.records

let serialize buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  add_varint buf t.id;
  add_varint buf (String.length t.path);
  Buffer.add_string buf t.path;
  Buffer.add_char buf (match t.kind with Text -> 'T' | Attribute -> 'A');
  let alg = Compress.Codec.algorithm_name t.algorithm in
  add_varint buf (String.length alg);
  Buffer.add_string buf alg;
  add_varint buf t.model_id;
  add_varint buf t.plain_bytes;
  add_varint buf (Array.length t.records);
  Array.iter
    (fun r ->
      add_varint buf (String.length r.code);
      Buffer.add_string buf r.code;
      add_varint buf r.parent)
    t.records

let deserialize ~(models : (int, Compress.Codec.model) Hashtbl.t) (s : string) (pos : int) :
    t * int =
  let read_varint = Compress.Rle.read_varint in
  let (id, pos) = read_varint s pos in
  let (plen, pos) = read_varint s pos in
  let path = String.sub s pos plen in
  let pos = pos + plen in
  let kind = match s.[pos] with 'T' -> Text | 'A' -> Attribute | _ -> failwith "bad kind" in
  let pos = pos + 1 in
  let (alen, pos) = read_varint s pos in
  let algorithm = Compress.Codec.algorithm_of_name (String.sub s pos alen) in
  let pos = pos + alen in
  let (model_id, pos) = read_varint s pos in
  let (plain_bytes, pos) = read_varint s pos in
  let (n, pos) = read_varint s pos in
  let pos = ref pos in
  let records =
    Array.init n (fun _ ->
        let (clen, p) = read_varint s !pos in
        let code = String.sub s p clen in
        let (parent, p) = read_varint s (p + clen) in
        pos := p;
        { code; parent })
  in
  let model = Hashtbl.find models model_id in
  ({ id; path; kind; algorithm; model; model_id; records; plain_bytes }, !pos)
