(* Value containers (§2.2): all data values found under the same
   root-to-leaf path are stored together. A container is a sequence of
   records <compressed value, parent pointer>, kept in lexicographic order
   of the compressed values — NOT document order — enabling binary search
   and 1-pass merge joins. With an order-preserving codec the code order
   coincides with the plaintext order; with Huffman it still clusters
   equal values, so equality search works in the compressed domain.

   Since repository format v2 the record sequence is stored as
   fixed-budget BLOCKS (~16 KiB of plaintext per block by default): each
   block carries a header <count, min code, max code, plain bytes,
   payload length> and a payload produced by {!Compress.Codec.encode_block}.
   Blocks are contiguous slices of the sorted sequence, so the header
   min/max ranges are themselves sorted and every access path can prune
   blocks wholesale before decoding anything. Decoded blocks live in the
   shared {!Buffer_pool}; a container never holds decoded records
   directly, which is what makes demand paging real: a predicate that
   touches 2 of 50 blocks decodes 2 blocks. *)

type kind = Text | Attribute

type record = { code : string; parent : int }

type block = {
  b_start : int;  (** global index of the block's first record *)
  b_count : int;
  b_min : string;  (** conservative lower bound: [b_min <=] every code in the block *)
  b_max : string;  (** conservative upper bound: [b_max >=] every code in the block *)
  b_exact : bool;
      (** [b_min]/[b_max] are the block's actual first/last codes, not
          capped approximations. False whenever a boundary code is longer
          than {!header_key_cap} — then [b_max] over-estimates (and
          [b_min] under-estimates), so consumers must treat the bounds as
          a superset interval: overlap tests stay sound, but equality or
          containment conclusions require this bit. *)
  b_plain : int;  (** plaintext bytes covered (exact at build, estimated for v1 loads) *)
  b_payload : string;  (** {!Compress.Codec.encode_block} output *)
}

type t = {
  id : int;
  uid : int;  (** process-unique identity for buffer-pool keys *)
  path : string;  (** root-to-leaf path expression, e.g. "/site/people/person/name/#text" *)
  kind : kind;
  mutable algorithm : Compress.Codec.algorithm;
  mutable model : Compress.Codec.model;
  mutable model_id : int;  (** containers sharing a source model share this id *)
  mutable blocks : block array;
  mutable n_records : int;
  mutable plain_bytes : int;  (** total plaintext bytes (for stats / cost model) *)
  mutable generation : int;  (** bumped by recompress; part of the pool key *)
  mutable distinct_parents : bool;
      (** no two records share a parent pointer — precomputed at build
          time so bare-element predicates can skip the existence check
          that used to scan every block (stored in the v2 image,
          recomputed on v1 load) *)
  mutable sorted_run : bool;
      (** the record sequence was verified (at build / load) to be sorted
          by (code, parent) — the precondition for header-interval merge
          joins. Verified by an adjacent-pair scan in
          {!of_sorted_records}, persisted in the v2 flags byte; images
          written before the flag existed load as [false]
          (conservatively disabling the block join on them). *)
  mutable block_size : int;
      (** target plaintext bytes per block this container was chunked
          with — per container since the adaptive-sizing pass, persisted
          behind flags bit 3 when it differs from the built-in default *)
  mutable compaction_epoch : int;
      (** how many times the compactor has re-blocked this container
          (0 at build; persisted with [block_size]) *)
}

let length t = t.n_records

let block_count t = Array.length t.blocks

(* ------------------------------------------------------------------ *)
(* Block size configuration                                            *)
(* ------------------------------------------------------------------ *)

(* Target plaintext bytes per block. Small enough that selective
   predicates skip most of a large container, large enough that the
   varint framing and the pool bookkeeping stay negligible. *)
let default_block_size_ref = ref 16384

(* The wire format's notion of "the default": a container whose
   block_size equals this constant (and whose compaction epoch is 0)
   serializes without the flags-bit-3 extension, which is what keeps
   re-saves of pre-extension images byte-exact. Deliberately a constant,
   not [!default_block_size_ref] — serialization must not depend on
   ambient CLI configuration. *)
let builtin_block_size = 16384

let set_default_block_size n =
  if n < 1 then invalid_arg "Container.set_default_block_size";
  default_block_size_ref := n

let default_block_size () = !default_block_size_ref

(* Clamp bounds for any adaptive choice: below ~1 KiB blocks are all
   header and the binary searches stop amortizing; above 256 KiB a
   single stray predicate decodes more than the old whole-container
   worst case used to. *)
let min_block_size = 1024

let max_block_size = 262144

let clamp_block_size n = min max_block_size (max min_block_size n)

(** Declared access pattern of a container, as seen by the build-time
    sizing pass: mostly scanned/wildcarded, mostly selective point
    lookups, or anything in between. *)
type access_pattern = Seq_heavy | Random_selective | Mixed

(* Sequential-heavy containers amortize per-block costs over big blocks;
   selective-random ones want small blocks so an eq predicate decodes
   little. Both are floored at 8 average values per block — with wide
   values a "small" block degenerating to one record per block would be
   pure framing overhead. *)
let pick_block_size ~(plain_bytes : int) ~(n_records : int) ~(access : access_pattern) :
    int =
  let base = !default_block_size_ref in
  let scaled =
    match access with
    | Seq_heavy -> base * 4
    | Random_selective -> base / 4
    | Mixed -> base
  in
  let avg = if n_records = 0 then 1 else max 1 (plain_bytes / n_records) in
  clamp_block_size (max scaled (8 * avg))

(* ------------------------------------------------------------------ *)
(* Block construction / decoding                                       *)
(* ------------------------------------------------------------------ *)

(* Header keys are conservative bounds, not exact codes: b_min is a
   prefix of the block's first code (so b_min <= every code) and b_max a
   lexicographic upper bound derived from its last code (so b_max >=
   every code). Capping them keeps headers tiny even for codecs with
   long codes (bzip stores whole compressed values); pruning merely
   becomes a superset test, and the in-block binary searches on real
   codes keep results exact. *)
let header_key_cap = 8

let bound_min (s : string) : string =
  if String.length s <= header_key_cap then s else String.sub s 0 header_key_cap

let bound_max (s : string) : string =
  if String.length s <= header_key_cap then s
  else begin
    (* increment the last non-0xff byte of the capped prefix, producing a
       short string strictly greater than anything prefixed by it *)
    let rec last_incrementable i = if i < 0 then None else if s.[i] <> '\xff' then Some i else last_incrementable (i - 1) in
    match last_incrementable (header_key_cap - 1) with
    | Some i -> String.sub s 0 i ^ String.make 1 (Char.chr (Char.code s.[i] + 1))
    | None -> s (* capped prefix is all 0xff: keep the exact code *)
  end

(* Chunk sorted records into blocks: greedy fill while the accumulated
   plaintext stays under the budget (every block holds >= 1 record).
   [plain_size i] is the plaintext length of record i. *)
let blocks_of_records ~block_size ~(plain_size : int -> int) (records : record array) :
    block array =
  let n = Array.length records in
  if n = 0 then [||]
  else begin
    let out = ref [] in
    let start = ref 0 in
    while !start < n do
      let stop = ref (!start + 1) in
      let acc = ref (plain_size !start) in
      while
        !stop < n
        && !acc + plain_size !stop <= block_size
      do
        acc := !acc + plain_size !stop;
        incr stop
      done;
      let count = !stop - !start in
      let slice = Array.init count (fun i ->
          let r = records.(!start + i) in
          (r.code, r.parent))
      in
      let first = records.(!start).code and last = records.(!stop - 1).code in
      let b_min = bound_min first and b_max = bound_max last in
      out :=
        {
          b_start = !start;
          b_count = count;
          b_min;
          b_max;
          (* exact iff neither bound was capped: the header carries the
             real boundary codes, not approximations *)
          b_exact = b_min = first && b_max = last;
          b_plain = !acc;
          b_payload = Compress.Codec.encode_block slice;
        }
        :: !out;
      start := !stop
    done;
    Array.of_list (List.rev !out)
  end

(* ------------------------------------------------------------------ *)
(* Header-only view                                                    *)
(* ------------------------------------------------------------------ *)

type header = {
  h_block : int;
  h_start : int;
  h_count : int;
  h_min : string;
  h_max : string;
  h_exact : bool;
  h_payload_bytes : int;
}

(* Pure header projection: no payload fetch, no pool traffic. The block
   interval join reads both sides through this before deciding what (if
   anything) to decode. *)
let header (t : t) (i : int) : header =
  let b = t.blocks.(i) in
  {
    h_block = i;
    h_start = b.b_start;
    h_count = b.b_count;
    h_min = b.b_min;
    h_max = b.b_max;
    h_exact = b.b_exact;
    h_payload_bytes = String.length b.b_payload;
  }

let headers (t : t) : header array = Array.init (Array.length t.blocks) (header t)

(* ------------------------------------------------------------------ *)
(* Sequential read-ahead                                               *)
(* ------------------------------------------------------------------ *)

(* Read-ahead depth in blocks (process-wide; 0 = off, the default, so
   historical pool-counter semantics hold exactly unless an operator
   opts in). Plain ref: reads race benignly, writes happen at CLI
   startup / bench phase boundaries. *)
let prefetch_depth_ref = ref 0

let set_prefetch_depth n =
  if n < 0 then invalid_arg "Container.set_prefetch_depth";
  prefetch_depth_ref := n

let prefetch_depth () = !prefetch_depth_ref

(* Speculatively decode up to [depth] absent blocks starting at [from_]
   into the buffer pool, through {!Domain_pool.submit} when workers
   exist and inline otherwise. Differs from the demand thunk in
   [fetch_block] in accounting only: no heat touch (the query has not
   asked for these blocks), no budget charge (read-ahead is a pool
   concern, not query work — an exhausted budget must not be tripped by
   speculation), and the pool books the decode as a prefetch fill, not
   a miss. *)
let read_ahead (t : t) ~(from_ : int) ~(depth : int) : unit =
  let last = min (Array.length t.blocks - 1) (from_ + depth - 1) in
  for k = from_ to last do
    if not (Buffer_pool.resident ~uid:t.uid ~gen:t.generation ~blk:k) then begin
      let b = t.blocks.(k) in
      let uid = t.uid and gen = t.generation in
      let task () =
        ignore
          (Buffer_pool.prefetch ~uid ~gen ~blk:k (fun () ->
               let recs = Compress.Codec.decode_block ~count:b.b_count b.b_payload in
               let codes = Array.map fst recs in
               let parents = Array.map snd recs in
               let d_bytes =
                 Array.fold_left (fun acc c -> acc + String.length c + 16) 64 codes
               in
               Buffer_pool.note_payload_decoded (String.length b.b_payload);
               Xquec_obs.Heat.note_decode ~uid ~blk:k ~bytes:(String.length b.b_payload);
               if Xquec_obs.is_enabled () then
                 Xquec_obs.Metrics.incr "container.blocks_prefetched";
               { Buffer_pool.codes; parents; d_bytes }))
      in
      if not (Domain_pool.submit task) then task ()
    end
  done

(* Decode block [i] through the buffer pool. The decode thunk runs on
   whichever domain executes it (caller or a Domain_pool worker), so its
   trace span lands in that domain's ring buffer — which is what makes
   decode parallelism visible in the chrome-trace export.

   [budget] is the evaluating query's budget handle: when this call is
   made directly it defaults to the calling domain's own armed budget,
   but batch submission ([fetch_blocks]) must capture the handle up
   front and pass it in, because the thunk then executes on a
   Domain_pool worker whose DLS belongs to no query. Decoded bytes are
   charged to that handle inside the thunk; the poll at entry is what
   actually trips an exhausted budget (on the evaluating domain, where
   the exception unwinds the query and not a pool worker's batch). *)
let fetch_block ?admission ?budget (t : t) (i : int) : Buffer_pool.decoded =
  let budget =
    match budget with Some h -> h | None -> Xquec_obs.Budget.current ()
  in
  Xquec_obs.Budget.check budget;
  let b = t.blocks.(i) in
  (* Sequential-run detection rides on Heat's per-domain run slot, read
     BEFORE our own touch updates it: this fetch continues a run iff
     this domain's previous touch was the preceding block of this
     container. Costs nothing while the depth knob is 0. *)
  let depth = !prefetch_depth_ref in
  let sequential =
    depth > 0 && i > 0
    &&
    let u, blk = Xquec_obs.Heat.domain_last () in
    u = t.uid && blk = i - 1
  in
  Xquec_obs.Heat.note_touch ~uid:t.uid ~blk:i;
  let d =
    Buffer_pool.fetch ?admission ~uid:t.uid ~gen:t.generation ~blk:i
    (fun () ->
      Xquec_obs.Trace.with_span ~name:"container.decode"
        ~attrs:[ ("path", t.path); ("block", string_of_int i) ]
      @@ fun () ->
      let recs = Compress.Codec.decode_block ~count:b.b_count b.b_payload in
      let codes = Array.map fst recs in
      let parents = Array.map snd recs in
      let d_bytes =
        Array.fold_left (fun acc c -> acc + String.length c + 16) 64 codes
      in
      Xquec_obs.Budget.charge budget d_bytes;
      Buffer_pool.note_payload_decoded (String.length b.b_payload);
      Xquec_obs.Heat.note_decode ~uid:t.uid ~blk:i ~bytes:(String.length b.b_payload);
      if Xquec_obs.is_enabled () then begin
        Xquec_obs.Metrics.incr "container.blocks_decoded";
        Xquec_obs.Metrics.incr ~by:(String.length b.b_payload)
          "container.block_bytes_decoded"
      end;
      { Buffer_pool.codes; parents; d_bytes })
  in
  if sequential then read_ahead t ~from_:(i + 1) ~depth;
  d

(* Batch decode path: decode blocks [b0, b1] (inclusive) and return
   their decoded images in order. Blocks already resident stay on the
   caller's fast path (counted as hits); the absent ones are submitted
   to the {!Domain_pool} as one batch, each task decoding through
   {!Buffer_pool.fetch} so results land in the pool as they complete
   and concurrent queries dedup on the pool's latches. With a pool of
   size 0 — or fewer than two absent blocks — everything runs on the
   calling domain in block order, preserving sequential semantics and
   counters exactly. *)
let fetch_blocks ?admission (t : t) ~(b0 : int) ~(b1 : int) :
    Buffer_pool.decoded array =
  let n = b1 - b0 + 1 in
  if n <= 0 then [||]
  else begin
    (* Captured here, on the evaluating domain: the per-block tasks run
       on pool workers whose own DLS is unarmed. One poll up front trips
       an already exhausted budget before any new decode is submitted. *)
    let budget = Xquec_obs.Budget.current () in
    Xquec_obs.Budget.check budget;
    let results : Buffer_pool.decoded option array = Array.make n None in
    if Domain_pool.size () > 0 && n > 1 then begin
      let absent = ref [] in
      for k = n - 1 downto 0 do
        if not (Buffer_pool.resident ~uid:t.uid ~gen:t.generation ~blk:(b0 + k)) then
          absent := k :: !absent
      done;
      match !absent with
      | [] | [ _ ] -> ()  (* nothing or one block to decode: inline below *)
      | ks ->
        (* Each task writes its own slot; Domain_pool.run's batch latch
           (a mutex handoff) publishes the writes to this domain. *)
        let tasks =
          Array.of_list
            (List.map
               (fun k () -> results.(k) <- Some (fetch_block ?admission ~budget t (b0 + k)))
               ks)
        in
        Domain_pool.run tasks
    end;
    Array.init n (fun k ->
        match results.(k) with
        | Some d -> d
        | None -> fetch_block ?admission ~budget t (b0 + k))
  end

(** Decode blocks [b0, b1] into the buffer pool (in parallel when a
    domain pool is configured) without returning them — the warm-up
    half of every batched access path below. *)
let prefetch_blocks (t : t) ~(b0 : int) ~(b1 : int) : unit =
  ignore (fetch_blocks t ~b0 ~b1)

let compressed_bytes (t : t) =
  Array.fold_left (fun acc b -> acc + String.length b.b_payload) 0 t.blocks

(* Publish per-container size + codec choice under the metric naming
   scheme "container.<path>.*" (no-ops while telemetry is disabled). *)
let publish_metrics (t : t) : unit =
  if Xquec_obs.is_enabled () then begin
    let pfx = "container." ^ t.path in
    Xquec_obs.Metrics.set_gauge (pfx ^ ".encoded_bytes") (float_of_int (compressed_bytes t));
    Xquec_obs.Metrics.set_gauge (pfx ^ ".plain_bytes") (float_of_int t.plain_bytes);
    Xquec_obs.Metrics.set_gauge (pfx ^ ".records") (float_of_int t.n_records);
    Xquec_obs.Metrics.set_gauge (pfx ^ ".blocks") (float_of_int (Array.length t.blocks))
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* One pass over the (still plaintext-side) records at build time; the
   executor reads the resulting bit instead of scanning every block to
   re-derive it per query. *)
let all_parents_distinct (records : record array) : bool =
  let seen = Hashtbl.create (Array.length records * 2 + 1) in
  try
    Array.iter
      (fun r ->
        if Hashtbl.mem seen r.parent then raise Exit else Hashtbl.add seen r.parent ())
      records;
    true
  with Exit -> false

(* Adjacent-pair verification that the sequence really is sorted by
   (code, parent). O(n) over in-memory records at build/load time — the
   merge-join path trusts this bit instead of re-checking per query. *)
let is_sorted_run (records : record array) : bool =
  let n = Array.length records in
  let rec go i =
    i >= n
    || (compare (records.(i - 1).code, records.(i - 1).parent) (records.(i).code, records.(i).parent)
          <= 0
       && go (i + 1))
  in
  go 1

(** Assemble a container from records already sorted by (code, parent).
    [plain_sizes.(i)] is the plaintext length of record [i] when known
    (exact block budgeting); omitted, sizes are estimated from the
    container average. Used by the loader, which sorts records itself to
    build its sequence-to-index maps. *)
let of_sorted_records ?block_size ?plain_sizes ~id ~path ~kind ~algorithm ~model ~model_id
    ~plain_bytes (records : record array) : t =
  let block_size = Option.value ~default:!default_block_size_ref block_size in
  let n = Array.length records in
  let plain_size =
    match plain_sizes with
    | Some sizes -> fun i -> max 1 sizes.(i)
    | None ->
      let avg = if n = 0 then 1 else max 1 (plain_bytes / n) in
      fun _ -> avg
  in
  let blocks = blocks_of_records ~block_size ~plain_size records in
  let t =
    {
      id;
      uid = Buffer_pool.fresh_uid ();
      path;
      kind;
      algorithm;
      model;
      model_id;
      blocks;
      n_records = n;
      plain_bytes;
      generation = 0;
      distinct_parents = all_parents_distinct records;
      sorted_run = is_sorted_run records;
      block_size;
      compaction_epoch = 0;
    }
  in
  publish_metrics t;
  Xquec_obs.Heat.register ~uid:t.uid ~label:t.path ~blocks:(Array.length t.blocks);
  t

(** Build a container from (value, parent-id) pairs, training a fresh
    source model with the given algorithm. *)
let build ?block_size ~id ~path ~kind ~algorithm (values : (string * int) list) : t =
  let model = Compress.Codec.train algorithm (List.map fst values) in
  let triples =
    List.map
      (fun (v, parent) ->
        ({ code = Compress.Codec.compress model v; parent }, String.length v))
      values
    |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> compare (a.code, a.parent) (b.code, b.parent)) triples;
  let records = Array.map fst triples in
  let plain_sizes = Array.map snd triples in
  let plain_bytes = Array.fold_left ( + ) 0 plain_sizes in
  of_sorted_records ?block_size ~plain_sizes ~id ~path ~kind ~algorithm ~model ~model_id:id
    ~plain_bytes records

(** All (plaintext, parent) pairs, decompressed, in record order. *)
let dump (t : t) : (string * int) list =
  let ds = fetch_blocks t ~b0:0 ~b1:(Array.length t.blocks - 1) in
  List.concat
    (List.init (Array.length t.blocks) (fun i ->
         let d = ds.(i) in
         List.init (Array.length d.Buffer_pool.codes) (fun off ->
             ( Compress.Codec.decompress t.model d.Buffer_pool.codes.(off),
               d.Buffer_pool.parents.(off) ))))

(** Re-compress with a new algorithm / shared model. [model] must have
    been trained on a superset of this container's values. Returns the
    permutation old record index -> new record index so callers can fix
    up value pointers into this container. *)
let recompress (t : t) ~algorithm ~model ~model_id : int array =
  let plain = dump t in
  let triples =
    List.mapi
      (fun old_idx (v, parent) ->
        ({ code = Compress.Codec.compress model v; parent }, String.length v, old_idx))
      plain
    |> Array.of_list
  in
  Array.sort
    (fun (a, _, ia) (b, _, ib) -> compare (a.code, a.parent, ia) (b.code, b.parent, ib))
    triples;
  let remap = Array.make (Array.length triples) 0 in
  Array.iteri (fun new_idx (_, _, old_idx) -> remap.(old_idx) <- new_idx) triples;
  let records = Array.map (fun (r, _, _) -> r) triples in
  let plain_sizes = Array.map (fun (_, s, _) -> s) triples in
  t.algorithm <- algorithm;
  t.model <- model;
  t.model_id <- model_id;
  t.generation <- t.generation + 1;
  Buffer_pool.invalidate ~uid:t.uid;
  t.blocks <-
    blocks_of_records ~block_size:t.block_size
      ~plain_size:(fun i -> max 1 plain_sizes.(i))
      records;
  t.n_records <- Array.length records;
  t.distinct_parents <- all_parents_distinct records;
  t.sorted_run <- is_sorted_run records;
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "container.recompressions";
    publish_metrics t
  end;
  Xquec_obs.Heat.register ~uid:t.uid ~label:t.path ~blocks:(Array.length t.blocks);
  remap

(* Decode every block (tail admission: a rewrite pass must not flush the
   hot working set) and return the raw compressed records plus
   per-record plaintext-size estimates. Exact per-record sizes are gone
   after build; the per-block average is what the original chunking
   preserved, and it is what keeps re-chunking deterministic. *)
let records_with_sizes (t : t) : record array * int array =
  let records = Array.make t.n_records { code = ""; parent = 0 } in
  let sizes = Array.make t.n_records 1 in
  (* strictly sequential block fetches (no [fetch_blocks] batch): the
     compactor may be running ON a domain-pool worker, and tasks must
     not submit nested batches *)
  Array.iteri
    (fun bi b ->
      let d = fetch_block ~admission:Buffer_pool.Tail t bi in
      let avg = max 1 (b.b_plain / max 1 b.b_count) in
      for off = 0 to b.b_count - 1 do
        records.(b.b_start + off) <-
          { code = d.Buffer_pool.codes.(off); parent = d.Buffer_pool.parents.(off) };
        sizes.(b.b_start + off) <- avg
      done)
    t.blocks;
  (records, sizes)

(** Re-chunk this container in place at a new target block size. Unlike
    {!recompress} the record sequence (codes, parents, order) is
    untouched — no model retraining, no pointer remap — so every
    invariant bit ([distinct_parents], [sorted_run]) carries over. Bumps
    the generation and invalidates the pool so stale blocks cannot be
    returned. Used by the build-time sizing pass; the online compactor
    uses {!reblocked} instead. *)
let reblock (t : t) ~(block_size : int) : unit =
  if block_size < 1 then invalid_arg "Container.reblock";
  let records, sizes = records_with_sizes t in
  t.generation <- t.generation + 1;
  ignore (Buffer_pool.invalidate_container ~uid:t.uid);
  t.blocks <- blocks_of_records ~block_size ~plain_size:(fun i -> sizes.(i)) records;
  t.block_size <- block_size;
  publish_metrics t;
  Xquec_obs.Heat.register ~uid:t.uid ~label:t.path ~blocks:(Array.length t.blocks)

(** Copy-on-write variant of {!reblock}: build and return a {e fresh}
    container (new pool uid, generation 0, compaction epoch bumped) with
    the same records re-chunked at [block_size], leaving [t] fully
    usable. In-flight queries holding [t] keep reading its blocks;
    the caller swaps the fresh container into the repository and then
    invalidates [t]'s uid. This is the compactor's primitive. *)
let reblocked (t : t) ~(block_size : int) : t =
  if block_size < 1 then invalid_arg "Container.reblocked";
  let records, sizes = records_with_sizes t in
  let blocks = blocks_of_records ~block_size ~plain_size:(fun i -> sizes.(i)) records in
  let fresh =
    {
      t with
      uid = Buffer_pool.fresh_uid ();
      blocks;
      generation = 0;
      block_size;
      compaction_epoch = t.compaction_epoch + 1;
    }
  in
  publish_metrics fresh;
  Xquec_obs.Heat.register ~uid:fresh.uid ~label:fresh.path
    ~blocks:(Array.length fresh.blocks);
  fresh

(* ------------------------------------------------------------------ *)
(* Access paths                                                        *)
(* ------------------------------------------------------------------ *)

(* Index of the block containing global record index [i]. *)
let block_of_index (t : t) (i : int) : int =
  let lo = ref 0 and hi = ref (Array.length t.blocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.blocks.(mid).b_start <= i then lo := mid else hi := mid - 1
  done;
  !lo

(** Random access to one record: decodes (at most) the one block that
    holds it, through the buffer pool. *)
let get (t : t) (i : int) : record =
  if i < 0 || i >= t.n_records then invalid_arg "Container.get";
  let bi = block_of_index t i in
  let d = fetch_block t bi in
  let off = i - t.blocks.(bi).b_start in
  { code = d.Buffer_pool.codes.(off); parent = d.Buffer_pool.parents.(off) }

(** ContScan: all records in compressed-value order (decodes every
    block — the access path min/max pruning exists to avoid). Blocks it
    decodes enter the buffer pool at the LRU tail ({!Buffer_pool.Tail})
    so a full scan cannot flush the hot working set. *)
let scan (t : t) : record array =
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.incr "container.scans";
    Xquec_obs.Metrics.incr ~by:t.n_records "container.scanned_records"
  end;
  let out = Array.make t.n_records { code = ""; parent = 0 } in
  let ds =
    fetch_blocks ~admission:Buffer_pool.Tail t ~b0:0 ~b1:(Array.length t.blocks - 1)
  in
  Array.iteri
    (fun bi b ->
      let d = ds.(bi) in
      for off = 0 to b.b_count - 1 do
        out.(b.b_start + off) <-
          { code = d.Buffer_pool.codes.(off); parent = d.Buffer_pool.parents.(off) }
      done)
    t.blocks;
  out

(* --- header-level binary searches ---------------------------------- *)

(* First block whose max code is >= / > [code]; Array.length blocks if none.
   Valid because blocks are contiguous sorted slices. *)
let first_block_max_ge (t : t) (code : string) : int =
  let lo = ref 0 and hi = ref (Array.length t.blocks) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.blocks.(mid).b_max code < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let first_block_max_gt (t : t) (code : string) : int =
  let lo = ref 0 and hi = ref (Array.length t.blocks) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.blocks.(mid).b_max code <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Last block whose min code is < [code]; -1 if none. *)
let last_block_min_lt (t : t) (code : string) : int =
  let lo = ref (-1) and hi = ref (Array.length t.blocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if String.compare t.blocks.(mid).b_min code < 0 then lo := mid else hi := mid - 1
  done;
  !lo

(* Last block whose min code is <= [code]; -1 if none. *)
let last_block_min_le (t : t) (code : string) : int =
  let lo = ref (-1) and hi = ref (Array.length t.blocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if String.compare t.blocks.(mid).b_min code <= 0 then lo := mid else hi := mid - 1
  done;
  !lo

(* --- in-block binary searches -------------------------------------- *)

let in_block_lower (d : Buffer_pool.decoded) (code : string) : int =
  let codes = d.Buffer_pool.codes in
  let lo = ref 0 and hi = ref (Array.length codes) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare codes.(mid) code < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let in_block_upper (d : Buffer_pool.decoded) (code : string) : int =
  let codes = d.Buffer_pool.codes in
  let lo = ref 0 and hi = ref (Array.length codes) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare codes.(mid) code <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First global index with code >= [code] (or length if none): a header
   binary search plus at most ONE block decode. *)
let lower_bound (t : t) (code : string) : int =
  let bi = first_block_max_ge t code in
  if bi >= Array.length t.blocks then t.n_records
  else begin
    let b = t.blocks.(bi) in
    if String.compare b.b_min code >= 0 then b.b_start
    else b.b_start + in_block_lower (fetch_block t bi) code
  end

(* First global index with code > [code]. *)
let upper_bound (t : t) (code : string) : int =
  let bi = first_block_max_gt t code in
  if bi >= Array.length t.blocks then t.n_records
  else begin
    let b = t.blocks.(bi) in
    if String.compare b.b_min code > 0 then b.b_start
    else b.b_start + in_block_upper (fetch_block t bi) code
  end

(* Compressed payload bytes of the blocks OUTSIDE [b0, b1] — the ones a
   pruning access path skipped ([b1 < b0] means all of them). Reported
   to the pool alongside the skipped-block count so decoded-vs-pruned
   byte ratios come out in the same (compressed payload) unit. *)
let pruned_payload_bytes (t : t) ~(b0 : int) ~(b1 : int) : int =
  let total = ref 0 in
  Array.iteri
    (fun i b -> if i < b0 || i > b1 then total := !total + String.length b.b_payload)
    t.blocks;
  !total

(* Report the blocks outside [b0, b1] as header-skipped, to the pool
   (global counters) and to the heat table (per-container). *)
let note_pruned (t : t) ~(b0 : int) ~(b1 : int) (blocks : int) : unit =
  let bytes = pruned_payload_bytes t ~b0 ~b1 in
  Buffer_pool.note_skipped ~bytes blocks;
  Xquec_obs.Heat.note_skip ~uid:t.uid ~blocks ~bytes

(** Records with global indices in [lo, hi): decodes only the blocks the
    interval touches; everything outside is counted as pruned. Like
    {!scan}, decoded blocks enter the pool at the LRU tail. *)
let range (t : t) ~(lo : int) ~(hi : int) : record list =
  let lo = max 0 lo and hi = min t.n_records hi in
  let nblocks = Array.length t.blocks in
  if hi <= lo then begin
    note_pruned t ~b0:0 ~b1:(-1) nblocks;
    []
  end
  else begin
    let b0 = block_of_index t lo and b1 = block_of_index t (hi - 1) in
    note_pruned t ~b0 ~b1 (nblocks - (b1 - b0 + 1));
    let ds = fetch_blocks ~admission:Buffer_pool.Tail t ~b0 ~b1 in
    List.concat
      (List.init (b1 - b0 + 1) (fun k ->
           let bi = b0 + k in
           let b = t.blocks.(bi) in
           let d = ds.(k) in
           let off_lo = max 0 (lo - b.b_start) in
           let off_hi = min b.b_count (hi - b.b_start) in
           List.init (off_hi - off_lo) (fun j ->
               {
                 code = d.Buffer_pool.codes.(off_lo + j);
                 parent = d.Buffer_pool.parents.(off_lo + j);
               })))
  end

(** ContAccess with an equality criterion: header min/max pruning, then
    binary search on the compressed code inside the (few) candidate
    blocks. Valid whenever the algorithm supports [eq]. *)
let lookup_eq (t : t) (code : string) : record list =
  Xquec_obs.Metrics.incr "container.lookup_eq";
  let nblocks = Array.length t.blocks in
  let b0 = first_block_max_ge t code in
  let b1 = last_block_min_le t code in
  if b0 >= nblocks || b1 < b0 then begin
    note_pruned t ~b0:0 ~b1:(-1) nblocks;
    []
  end
  else begin
    note_pruned t ~b0 ~b1 (nblocks - (b1 - b0 + 1));
    let ds = fetch_blocks t ~b0 ~b1 in
    List.concat
      (List.init (b1 - b0 + 1) (fun k ->
           let d = ds.(k) in
           let off_lo = in_block_lower d code in
           let off_hi = in_block_upper d code in
           List.init (off_hi - off_lo) (fun j ->
               {
                 code = d.Buffer_pool.codes.(off_lo + j);
                 parent = d.Buffer_pool.parents.(off_lo + j);
               })))
  end

(** ContAccess with an interval criterion on compressed codes (valid only
    for order-preserving algorithms). Bounds are inclusive [lo] /
    exclusive [hi]; [None] means unbounded. Candidate blocks are chosen
    from headers alone; only they are decoded. *)
let lookup_range (t : t) ?lo ?hi () : record list =
  Xquec_obs.Metrics.incr "container.lookup_range";
  let nblocks = Array.length t.blocks in
  if nblocks = 0 then []
  else begin
    let b0 = match lo with None -> 0 | Some c -> first_block_max_ge t c in
    let b1 = match hi with None -> nblocks - 1 | Some c -> last_block_min_lt t c in
    if b0 >= nblocks || b1 < b0 then begin
      note_pruned t ~b0:0 ~b1:(-1) nblocks;
      []
    end
    else begin
      note_pruned t ~b0 ~b1 (nblocks - (b1 - b0 + 1));
      let ds = fetch_blocks t ~b0 ~b1 in
      List.concat
        (List.init (b1 - b0 + 1) (fun k ->
             let bi = b0 + k in
             let b = t.blocks.(bi) in
             let d = ds.(k) in
             let off_lo =
               match lo with
               | Some c when bi = b0 && String.compare b.b_min c < 0 -> in_block_lower d c
               | _ -> 0
             in
             let off_hi =
               match hi with
               | Some c when bi = b1 && String.compare b.b_max c >= 0 -> in_block_lower d c
               | _ -> b.b_count
             in
             List.init (max 0 (off_hi - off_lo)) (fun j ->
                 {
                   code = d.Buffer_pool.codes.(off_lo + j);
                   parent = d.Buffer_pool.parents.(off_lo + j);
                 })))
    end
  end

let decompress_record (t : t) (r : record) : string =
  Compress.Codec.decompress t.model r.code

(** Compress a query constant against this container's source model, for
    compressed-domain comparisons. *)
let compress_constant (t : t) (v : string) : string =
  Compress.Codec.compress t.model v

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* v2 container layout (inside a repository v2 image):
     varint id | varint |path| path | kind byte ('T'/'A') | flags byte
     varint |alg| alg | varint model_id | varint plain_bytes
     varint n_records | varint n_blocks
   Flags: bit 0 = parents all distinct (precomputed at build time);
          bit 1 = record sequence verified sorted by (code, parent);
          bit 2 = per-block flags byte present (below);
          bit 3 = adaptive-sizing extension present: two varints
                  <block_size, compaction_epoch> follow the flags byte.
   The extension is emitted ONLY when block_size differs from the
   built-in default (16384) or the compaction epoch is non-zero, so
   every image written before the extension existed — and every re-save
   of one — stays byte-identical.
     [varint block_size | varint compaction_epoch   if bit 3]
     then per block:
       varint b_count | [flags byte if container bit 2]
       varint |b_min| b_min | varint |b_max| b_max
       varint b_plain | varint |payload| payload
   Per-block flags: bit 0 = header bounds exact (uncapped codes).
   Images written before bits 1-2 existed parse with both clear:
   [sorted_run] and every [b_exact] load as false, which only disables
   optimizations — never correctness. Block payloads are stored
   verbatim, which makes save -> load -> save byte-exact. *)

let serialize buf (t : t) =
  let add_varint = Compress.Rle.add_varint in
  let add_str s =
    add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  add_varint buf t.id;
  add_str t.path;
  Buffer.add_char buf (match t.kind with Text -> 'T' | Attribute -> 'A');
  let adaptive = t.block_size <> builtin_block_size || t.compaction_epoch <> 0 in
  let flags =
    (if t.distinct_parents then 1 else 0)
    lor (if t.sorted_run then 2 else 0)
    lor 4 (* per-block flags byte present *)
    lor if adaptive then 8 else 0
  in
  Buffer.add_char buf (Char.chr flags);
  if adaptive then begin
    add_varint buf t.block_size;
    add_varint buf t.compaction_epoch
  end;
  add_str (Compress.Codec.algorithm_name t.algorithm);
  add_varint buf t.model_id;
  add_varint buf t.plain_bytes;
  add_varint buf t.n_records;
  add_varint buf (Array.length t.blocks);
  Array.iter
    (fun b ->
      add_varint buf b.b_count;
      Buffer.add_char buf (Char.chr (if b.b_exact then 1 else 0));
      add_str b.b_min;
      add_str b.b_max;
      add_varint buf b.b_plain;
      add_str b.b_payload)
    t.blocks

let deserialize ~(models : (int, Compress.Codec.model) Hashtbl.t) (s : string) (pos : int) :
    t * int =
  let read_varint = Compress.Rle.read_varint in
  let pos = ref pos in
  let varint () =
    let (v, p) = read_varint s !pos in
    pos := p;
    v
  in
  let str () =
    let n = varint () in
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let id = varint () in
  let path = str () in
  let kind = match s.[!pos] with 'T' -> Text | 'A' -> Attribute | _ -> failwith "bad kind" in
  incr pos;
  let flags = Char.code s.[!pos] in
  let distinct_parents = flags land 1 <> 0 in
  let sorted_run = flags land 2 <> 0 in
  let block_flags = flags land 4 <> 0 in
  incr pos;
  let block_size, compaction_epoch =
    if flags land 8 <> 0 then begin
      let bs = varint () in
      let ep = varint () in
      (bs, ep)
    end
    else (builtin_block_size, 0)
  in
  let algorithm = Compress.Codec.algorithm_of_name (str ()) in
  let model_id = varint () in
  let plain_bytes = varint () in
  let n_records = varint () in
  let n_blocks = varint () in
  let start = ref 0 in
  let blocks =
    Array.init n_blocks (fun _ ->
        let b_count = varint () in
        let b_exact =
          if block_flags then begin
            let f = Char.code s.[!pos] in
            incr pos;
            f land 1 <> 0
          end
          else false (* legacy image: assume capped (conservative) *)
        in
        let b_min = str () in
        let b_max = str () in
        let b_plain = varint () in
        let b_payload = str () in
        let b =
          { b_start = !start; b_count; b_min; b_max; b_exact; b_plain; b_payload }
        in
        start := !start + b_count;
        b)
  in
  if !start <> n_records then failwith "container: block counts disagree with record count";
  let model = Hashtbl.find models model_id in
  let t =
    {
      id;
      uid = Buffer_pool.fresh_uid ();
      path;
      kind;
      algorithm;
      model;
      model_id;
      blocks;
      n_records;
      plain_bytes;
      generation = 0;
      distinct_parents;
      sorted_run;
      block_size;
      compaction_epoch;
    }
  in
  Xquec_obs.Heat.register ~uid:t.uid ~label:t.path ~blocks:(Array.length t.blocks);
  (t, !pos)

(* v1 layout: records inline, one <code, parent> pair after another. The
   records come back in sorted order (v1 containers were sorted too), so
   re-blocking preserves every invariant; per-record plaintext sizes are
   estimated from the container average. *)
let deserialize_v1 ~(models : (int, Compress.Codec.model) Hashtbl.t) (s : string) (pos : int) :
    t * int =
  let read_varint = Compress.Rle.read_varint in
  let (id, pos) = read_varint s pos in
  let (plen, pos) = read_varint s pos in
  let path = String.sub s pos plen in
  let pos = pos + plen in
  let kind = match s.[pos] with 'T' -> Text | 'A' -> Attribute | _ -> failwith "bad kind" in
  let pos = pos + 1 in
  let (alen, pos) = read_varint s pos in
  let algorithm = Compress.Codec.algorithm_of_name (String.sub s pos alen) in
  let pos = pos + alen in
  let (model_id, pos) = read_varint s pos in
  let (plain_bytes, pos) = read_varint s pos in
  let (n, pos) = read_varint s pos in
  let pos = ref pos in
  let records =
    Array.init n (fun _ ->
        let (clen, p) = read_varint s !pos in
        let code = String.sub s p clen in
        let (parent, p) = read_varint s (p + clen) in
        pos := p;
        { code; parent })
  in
  let model = Hashtbl.find models model_id in
  let t =
    of_sorted_records ~id ~path ~kind ~algorithm ~model ~model_id ~plain_bytes records
  in
  (t, !pos)
