(** Process-wide buffer pool: an LRU cache of decoded container blocks
    with a byte budget, shared across all containers and repositories.

    Containers call {!fetch} on every block access; the pool either
    returns the resident decoded block (hit) or runs the supplied decode
    thunk, caches the result, and evicts least-recently-used blocks
    until the pool is back under budget (miss). Cumulative counters are
    maintained unconditionally so the executor's EXPLAIN can attribute
    cache activity per operator even when global telemetry is off;
    events are mirrored to [Xquec_obs.Metrics] under ["bufferpool.*"]
    when it is on.

    {b Thread safety:} every function in this interface may be called
    from any domain (the {!Domain_pool} workers decode into the pool
    concurrently). A single mutex guards the LRU structures; decode
    thunks run outside it. An in-flight decode is represented by a
    per-block latch: a second requester of the same block blocks on the
    latch instead of decoding again, counted as an [s_latch_waits]
    event, so every fetch is exactly one of hit / miss / latch wait.
    With [--decode-domains 0] no other domain exists, latch waits cannot
    occur, and the counters coincide with the historical
    single-threaded semantics. See [docs/CONCURRENCY.md]. *)

(** A decoded block: parallel arrays of codes (still individually
    compressed) and parent node ids.

    Invariant: [Array.length codes = Array.length parents], and codes
    are in non-decreasing order (containers are value-sorted and blocks
    are contiguous slices). [d_bytes] is the byte charge the entry puts
    on the pool budget (code bytes plus per-record overhead). *)
type decoded = { codes : string array; parents : int array; d_bytes : int }

(** Where a freshly decoded block enters the LRU list. [Mru] (the
    default) inserts at the front — classic LRU. [Tail] is the
    scan-resistant policy used by {!Container.scan} and {!Container.range}:
    the block enters at the eviction end (and, if the pool is over
    budget, may be evicted immediately — even before anything hotter),
    so a one-pass scan of a container larger than the budget cannot
    flush the hot working set. A tail-admitted block that gets
    re-referenced is promoted to the front by the hit path like any
    other entry. *)
type admission = Mru | Tail

(** Cumulative and resident pool counters, readable at any time.
    The cumulative fields ([s_hits] … [s_blocks_skipped]) only grow
    (see {!reset_stats}); the two [s_resident_*] fields track what
    currently occupies the budget. *)
type stats = {
  s_hits : int;
  s_misses : int;
  s_latch_waits : int;
      (** fetches that blocked on another domain's in-flight decode of
          the same block (always 0 under [--decode-domains 0]) *)
  s_evictions : int;
  s_decoded_bytes : int;  (** total bytes ever charged by decodes *)
  s_blocks_skipped : int;  (** blocks pruned via headers, never decoded *)
  s_scan_inserts : int;  (** blocks admitted at the LRU tail ({!Tail}) *)
  s_invalidations : int;
      (** entries dropped by {!invalidate_container} / {!invalidate} —
          deliberately NOT counted as [s_evictions]: evictions measure
          capacity pressure, invalidations measure container churn *)
  s_prefetch_fills : int;
      (** blocks decoded speculatively by {!prefetch} (not misses) *)
  s_prefetch_hits : int;
      (** demand fetches served by a still-untouched prefetched block *)
  s_payload_bytes : int;
      (** compressed payload bytes actually decoded (same unit as
          [s_skipped_bytes], so decoded-vs-pruned ratios are meaningful;
          [s_decoded_bytes] by contrast is the in-memory charge) *)
  s_skipped_bytes : int;
      (** compressed payload bytes of header-pruned blocks *)
  s_resident_bytes : int;
  s_resident_blocks : int;
}

(** Current counter values (cheap: atomic reads plus a brief lock for
    the resident fields). *)
val snapshot : unit -> stats

(** Set the pool's byte budget (the CLI's [--cache-mb]); evicts
    immediately if the pool is over the new budget. The most recently
    used block is never evicted, so one oversized block still works. *)
val set_budget : bytes:int -> unit

(** The current byte budget (default 64 MiB). *)
val budget_bytes : unit -> int

(** [fetch ~uid ~gen ~blk decode] returns the decoded block for
    container [uid] (at recompression generation [gen]), block index
    [blk] — from cache on a hit, via [decode] on a miss, or by waiting
    on the latch of a concurrent decode of the same block. [decode] runs
    outside the pool lock; if it raises, the exception propagates to
    this caller and is re-raised at every latch waiter. [?admission]
    (default {!Mru}) chooses where a miss-decoded block enters the LRU
    list; it has no effect on hits or latch waits. *)
val fetch :
  ?admission:admission ->
  uid:int ->
  gen:int ->
  blk:int ->
  (unit -> decoded) ->
  decoded

(** [resident ~uid ~gen ~blk] is [true] iff the block is currently
    cached (in-flight decodes count as absent). A stat-free peek used by
    the batch decode path to partition candidate blocks; the answer may
    be stale by the time the caller acts on it — that is safe, it only
    costs an extra hit or latch wait. *)
val resident : uid:int -> gen:int -> blk:int -> bool

(** Record [n] blocks skipped wholesale by header min/max pruning
    (counted into {!stats} and the ["container.blocks_skipped"]
    metric). [?bytes] is the total compressed payload size of the
    pruned blocks, accumulated into [s_skipped_bytes]. *)
val note_skipped : ?bytes:int -> int -> unit

(** Record compressed payload bytes consumed by an actual block decode
    (accumulated into [s_payload_bytes]; called by the container decode
    thunk). *)
val note_payload_decoded : int -> unit

(** [prefetch ~uid ~gen ~blk decode] speculatively decodes and caches a
    block ahead of a sequential cursor. If the block is already resident
    or in flight the call is a cheap no-op (it never blocks on a latch);
    otherwise it installs a latch, runs [decode] and admits the block at
    the LRU {!Tail} (read-ahead must not displace the hot working set).
    The decode counts as [s_prefetch_fills], {e not} a miss; the later
    demand {!fetch} of the block is a hit that also bumps
    [s_prefetch_hits]. A failing [decode] is swallowed (the demand fetch
    will retry and surface the error). Returns [true] iff this call
    decoded and installed the block. Safe from any domain. *)
val prefetch : uid:int -> gen:int -> blk:int -> (unit -> decoded) -> bool

(** [invalidate_container ~uid] drops every resident block and pending
    decode of container [uid] (used when recompression or compaction
    swaps the container out), returning the number of entries removed.
    The drops are counted as [s_invalidations], never [s_evictions].
    In-flight decodes for [uid] complete but are not cached. *)
val invalidate_container : uid:int -> int

(** {!invalidate_container} ignoring the count. *)
val invalidate : uid:int -> unit

(** Drop all resident blocks (a "cold cache" for benchmarks). Does not
    reset the cumulative counters. In-flight decodes complete but are
    not cached. *)
val clear : unit -> unit

(** Zero the cumulative counters (resident state is untouched). *)
val reset_stats : unit -> unit

(** Allocate a process-unique container id for pool keys (atomic). *)
val fresh_uid : unit -> int
