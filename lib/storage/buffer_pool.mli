(** Process-wide buffer pool: an LRU cache of decoded container blocks
    with a byte budget, shared across all containers and repositories.

    Containers call {!fetch} on every block access; the pool either
    returns the resident decoded block (hit) or runs the supplied decode
    thunk, caches the result, and evicts least-recently-used blocks
    until the pool is back under budget (miss). Cumulative counters are
    maintained unconditionally so the executor's EXPLAIN can attribute
    cache activity per operator even when global telemetry is off;
    events are mirrored to [Xquec_obs.Metrics] under ["bufferpool.*"]
    when it is on. Single-threaded, like the rest of the engine. *)

(** A decoded block: parallel arrays of codes (still individually
    compressed) and parent node ids.

    Invariant: [Array.length codes = Array.length parents], and codes
    are in non-decreasing order (containers are value-sorted and blocks
    are contiguous slices). [d_bytes] is the byte charge the entry puts
    on the pool budget (code bytes plus per-record overhead). *)
type decoded = { codes : string array; parents : int array; d_bytes : int }

(** Cumulative and resident pool counters, readable at any time.
    [s_hits]/[s_misses]/[s_evictions]/[s_decoded_bytes]/[s_blocks_skipped]
    only grow (see {!reset_stats}); the two [s_resident_*] fields track
    what currently occupies the budget. *)
type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_decoded_bytes : int;  (** total bytes ever charged by decodes *)
  s_blocks_skipped : int;  (** blocks pruned via headers, never decoded *)
  s_resident_bytes : int;
  s_resident_blocks : int;
}

(** Current counter values (cheap: a record copy of a few ints). *)
val snapshot : unit -> stats

(** Set the pool's byte budget (the CLI's [--cache-mb]); evicts
    immediately if the pool is over the new budget. The most recently
    used block is never evicted, so one oversized block still works. *)
val set_budget : bytes:int -> unit

(** The current byte budget (default 64 MiB). *)
val budget_bytes : unit -> int

(** [fetch ~uid ~gen ~blk ~decode] returns the decoded block for
    container [uid] (at recompression generation [gen]), block index
    [blk] — from cache on a hit, via [decode] on a miss. *)
val fetch : uid:int -> gen:int -> blk:int -> decode:(unit -> decoded) -> decoded

(** Record [n] blocks skipped wholesale by header min/max pruning
    (counted into {!stats} and the ["container.blocks_skipped"]
    metric). *)
val note_skipped : int -> unit

(** Drop every resident block of container [uid] (used after
    recompression, together with the generation bump). *)
val invalidate : uid:int -> unit

(** Drop all resident blocks (a "cold cache" for benchmarks). Does not
    reset the cumulative counters. *)
val clear : unit -> unit

(** Zero the cumulative counters (resident state is untouched). *)
val reset_stats : unit -> unit

(** Allocate a process-unique container id for pool keys. *)
val fresh_uid : unit -> int
