(** Structure summary (§2.2): the tree of all distinct paths in the
    document. Each summary node reachable by path p stores the document
    nodes reachable by p (document order); value-bearing paths point to
    their containers. This is the redundant access structure that lets
    queries skip parsing the structure tree (§2.3, Fig. 4). *)

type node = {
  tag : int;  (** name-dictionary code; -1 at the (document) root *)
  path : string;
  mutable kids : node list;
  mutable rev_ids : int list;  (** build-time accumulator *)
  mutable ids : int array;  (** instances, document order (after seal) *)
  mutable text_container : int option;
}

(** A summary; [root] represents the document node (tag -1). *)
type t = { root : node }

(** Fresh summary holding only the root. *)
val create : unit -> t

(** Detached node for path [path] with tag code [tag]. *)
val make_node : tag:int -> path:string -> node

(** Child of the node with the given tag code, created (with path
    extended by [name]) if absent. *)
val child_or_create : node -> tag:int -> name:string -> node

(** Append a document node id to the node's instances (build time). *)
val add_id : node -> int -> unit

(** Freeze accumulated ids into arrays, recursively. *)
val seal_t : t -> unit

(** Child with the given tag code, if present. *)
val find_child : node -> int -> node option

(** All summary nodes in the subtree rooted at the argument (inclusive),
    prepended to the accumulator. *)
val descend_all : node -> node list -> node list

(** One navigation step over the summary: child/descendant axis, by tag
    code or wildcard. *)
type step = [ `Child of int | `Desc of int | `Child_any | `Desc_any ]

(** Apply one step relative to the given nodes. [is_attr] classifies tag
    codes so wildcard steps skip attribute paths. *)
val step_from : ?is_attr:(int -> bool) -> node list -> step -> node list

(** Match steps from the document root. *)
val match_steps : ?is_attr:(int -> bool) -> t -> step list -> node list

(** Document-order ids reachable through any of the given nodes. *)
val merged_ids : node list -> int array

(** Fold over all summary nodes, pre-order. *)
val fold : t -> init:'a -> f:('a -> node -> 'a) -> 'a

(** Number of summary nodes (distinct paths, root included). *)
val node_count : t -> int

(** Append the summary's serialized form to the buffer. *)
val serialize : Buffer.t -> t -> unit

(** [deserialize ~dict s pos] parses a summary at offset [pos] (paths
    are rebuilt via [dict]), returning it with the offset past it.
    Raises [Failure] on corrupt input. *)
val deserialize : dict:Name_dict.t -> string -> int -> t * int
