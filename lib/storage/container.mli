(** Value containers (§2.2): all data values found under one root-to-leaf
    path, as individually compressed records <code, parent id> kept in
    lexicographic order of the codes (NOT document order) — enabling
    binary search, range scans and 1-pass merge joins. *)

type kind = Text | Attribute

type record = { code : string; parent : int }

type t = {
  id : int;
  path : string;
  kind : kind;
  mutable algorithm : Compress.Codec.algorithm;
  mutable model : Compress.Codec.model;
  mutable model_id : int;  (** containers sharing a source model share this *)
  mutable records : record array;
  mutable plain_bytes : int;
}

val length : t -> int

(** Build from (value, parent-id) pairs, training a fresh model. *)
val build :
  id:int ->
  path:string ->
  kind:kind ->
  algorithm:Compress.Codec.algorithm ->
  (string * int) list ->
  t

(** All (plaintext, parent) pairs, decompressed, in record order. *)
val dump : t -> (string * int) list

(** Re-compress with a new algorithm / shared model; returns the
    old-index -> new-index permutation for pointer fix-up. *)
val recompress :
  t -> algorithm:Compress.Codec.algorithm -> model:Compress.Codec.model -> model_id:int -> int array

(** ContScan: all records in compressed-value order. *)
val scan : t -> record array

(** First index with code >= / > the argument. *)
val lower_bound : t -> string -> int

val upper_bound : t -> string -> int

(** ContAccess, equality criterion (valid under the [eq] property). *)
val lookup_eq : t -> string -> record list

(** ContAccess, interval criterion on codes (order-preserving codecs);
    [lo] inclusive, [hi] exclusive, [None] = unbounded. *)
val lookup_range : t -> ?lo:string -> ?hi:string -> unit -> record list

val decompress_record : t -> record -> string

(** Compress a query constant against this container's source model. *)
val compress_constant : t -> string -> string

val compressed_bytes : t -> int

(** Publish "container.<path>.{encoded_bytes,plain_bytes,records}"
    gauges to {!Xquec_obs.Metrics} (no-op while telemetry is off).
    Called automatically by {!build} and {!recompress}; the loader calls
    it for containers it assembles directly. *)
val publish_metrics : t -> unit

val serialize : Buffer.t -> t -> unit

val deserialize : models:(int, Compress.Codec.model) Hashtbl.t -> string -> int -> t * int
