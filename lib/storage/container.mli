(** Value containers (§2.2 of the paper): all data values reached by
    the same root-to-leaf path live together as records
    [<compressed value, parent pointer>], sorted lexicographically by
    compressed value — not document order — so equality and (for
    order-preserving codecs) range predicates run as binary searches in
    the compressed domain.

    Since repository format v2 the sorted sequence is physically split
    into fixed-budget compressed {e blocks} (~16 KiB of plaintext each
    by default). Each block header carries the record count and the
    min/max compressed value of its slice, so every access path below
    prunes whole blocks from headers alone and decodes — through the
    shared {!Buffer_pool} — only the blocks a predicate actually
    touches. *)

(** Containers hold either text nodes or attribute values. *)
type kind = Text | Attribute

(** One container record: the compressed value and the structure-tree id
    of the parent element (the "value pointer" inverse). *)
type record = { code : string; parent : int }

(** One compressed block: a contiguous slice of the sorted record
    sequence.

    Invariants: [b_min] is [<=] and [b_max] is [>=] every code in the
    block (conservative bounds capped at ~8 bytes, derived from the
    slice's first and last codes — pruning stays correct, headers stay
    tiny even for long-code codecs); [b_exact] records whether both
    bounds are the {e actual} boundary codes (it is false whenever a
    boundary code exceeded the cap, in which case [b_max]
    over-estimates and [b_min] under-estimates — overlap/pruning tests
    stay sound, but any consumer wanting equality or containment
    conclusions from the bounds must check the bit); consecutive blocks
    cover consecutive index ranges ([b_start] strictly increasing, next
    [b_start] = [b_start + b_count]); [b_payload] is a
    {!Compress.Codec.encode_block} image decoding to exactly [b_count]
    records. *)
type block = {
  b_start : int;
  b_count : int;
  b_min : string;
  b_max : string;
  b_exact : bool;
  b_plain : int;
  b_payload : string;
}

type t = {
  id : int;  (** repository-local container id (value pointers refer to it) *)
  uid : int;  (** process-unique identity used for buffer-pool keys *)
  path : string;  (** root-to-leaf path, e.g. ["/site/people/person/name/#text"] *)
  kind : kind;
  mutable algorithm : Compress.Codec.algorithm;
  mutable model : Compress.Codec.model;
  mutable model_id : int;  (** containers sharing a source model share this id *)
  mutable blocks : block array;
  mutable n_records : int;
  mutable plain_bytes : int;  (** total plaintext bytes (stats / cost model) *)
  mutable generation : int;  (** bumped on {!recompress}; part of the pool key *)
  mutable distinct_parents : bool;
      (** no two records share a parent pointer. Precomputed at build /
          recompress time and stored in the v2 image (recomputed when
          loading v1), so bare-element existence predicates can take the
          header-pruned path instead of scanning every block to check
          distinctness. *)
  mutable sorted_run : bool;
      (** the record sequence was verified sorted by (code, parent) —
          the precondition for the executor's block-interval merge join.
          Checked by an O(n) adjacent-pair scan at build / v1-load time
          and persisted in the v2 flags byte; v2 images written before
          the flag existed load as [false], conservatively keeping the
          block join off for them. *)
  mutable block_size : int;
      (** target plaintext bytes per block this container was chunked
          with. Per container since the adaptive-sizing pass; persisted
          behind flags bit 3 of the wire image whenever it differs from
          the built-in 16384 default (or the epoch is non-zero), so
          pre-extension images re-save byte-identically. *)
  mutable compaction_epoch : int;
      (** number of times this container has been re-blocked by the
          compactor ({!reblocked}); 0 at build, persisted alongside
          [block_size]. *)
}

(** Header-only projection of one block: bounds, cardinality and stored
    payload size, with {e no} payload fetch and no buffer-pool traffic.
    [h_block] is the block's index; the other fields mirror the
    corresponding {!block} fields ([h_payload_bytes] is the stored
    payload's length — the bytes a decode would read). This is the view
    the executor's block-interval join plans from before deciding which
    blocks (if any) to decode. *)
type header = {
  h_block : int;
  h_start : int;
  h_count : int;
  h_min : string;
  h_max : string;
  h_exact : bool;
  h_payload_bytes : int;
}

(** [header t i] is the header-only view of block [i]. *)
val header : t -> int -> header

(** All block headers in block order. Pure projection: never decodes a
    payload. Because blocks are contiguous slices of the sorted record
    sequence, the [h_min] and [h_max] sequences are both non-decreasing,
    which is what makes a two-pointer interval merge over two sides'
    headers sound. *)
val headers : t -> header array

(** Number of records (across all blocks). *)
val length : t -> int

(** Number of physical blocks. *)
val block_count : t -> int

(** Set the target plaintext bytes per block for subsequently built
    containers (the benchmark's block-size sweep). Raises
    [Invalid_argument] on a non-positive size. *)
val set_default_block_size : int -> unit

(** Current block-size target in bytes (initially 16384). *)
val default_block_size : unit -> int

(** Declared access pattern of a container, the input of
    {!pick_block_size}: dominated by scans/wildcards ([Seq_heavy]),
    dominated by selective point predicates ([Random_selective]), or
    anything in between ([Mixed]). *)
type access_pattern = Seq_heavy | Random_selective | Mixed

(** [pick_block_size ~plain_bytes ~n_records ~access] is the build-time
    per-container sizing heuristic: sequential-heavy containers get 4×
    the {!default_block_size} (per-block costs amortize over big
    blocks), selective-random ones get ¼ (an eq predicate decodes
    little), mixed keeps the default — floored at 8 average values per
    block and clamped to {!clamp_block_size}'s [1 KiB, 256 KiB] range.
    Deterministic: depends only on its arguments and the configured
    default. *)
val pick_block_size : plain_bytes:int -> n_records:int -> access:access_pattern -> int

(** Clamp a proposed block size into the supported [1024, 262144] byte
    range (used by every adaptive path: build-time sizing, profile-seeded
    sizes, compaction plans). *)
val clamp_block_size : int -> int

(** Sequential read-ahead depth in {e blocks} (process-wide; default
    [0] = off). When positive, a block fetch that continues a sequential
    run — this domain's previous fetch was the preceding block of the
    same container, per {!Xquec_obs.Heat}'s run slots — speculatively
    decodes up to this many following blocks into the {!Buffer_pool}
    through {!Domain_pool.submit} (inline when the pool is sequential).
    Prefetch decodes are pool [prefetch_fills], not misses, and charge
    no query budget. Requires heat accounting to be on (the default);
    with it off, runs are never detected and read-ahead never fires.
    Raises [Invalid_argument] on a negative depth. *)
val set_prefetch_depth : int -> unit

(** Current read-ahead depth (blocks). *)
val prefetch_depth : unit -> int

(** [build ~id ~path ~kind ~algorithm values] trains a fresh source
    model on the [(value, parent)] pairs, compresses them, sorts by
    (code, parent) and chunks into blocks of [?block_size] (default
    {!default_block_size}) plaintext bytes. *)
val build :
  ?block_size:int ->
  id:int ->
  path:string ->
  kind:kind ->
  algorithm:Compress.Codec.algorithm ->
  (string * int) list ->
  t

(** Assemble a container from records {e already sorted} by
    (code, parent) — used by the loader, which sorts records itself to
    derive its sequence-to-index maps. [plain_sizes.(i)] is the exact
    plaintext length of record [i]; when omitted, block budgeting falls
    back to the container-average estimate [plain_bytes / n]. *)
val of_sorted_records :
  ?block_size:int ->
  ?plain_sizes:int array ->
  id:int ->
  path:string ->
  kind:kind ->
  algorithm:Compress.Codec.algorithm ->
  model:Compress.Codec.model ->
  model_id:int ->
  plain_bytes:int ->
  record array ->
  t

(** All [(plaintext, parent)] pairs in record (compressed-value) order;
    decompresses every value. *)
val dump : t -> (string * int) list

(** [recompress t ~algorithm ~model ~model_id] re-encodes every value
    with the new (typically shared) model, re-sorts, re-blocks, bumps
    the generation and invalidates the container's buffer-pool entries.
    Returns the permutation old index -> new index so callers can patch
    value pointers. [model] must have been trained on a superset of this
    container's values. *)
val recompress :
  t ->
  algorithm:Compress.Codec.algorithm ->
  model:Compress.Codec.model ->
  model_id:int ->
  int array

(** [reblock t ~block_size] re-chunks the container in place at a new
    target block size. Unlike {!recompress} the record sequence (codes,
    parents, order) is untouched — no model retraining, no pointer
    remap, [distinct_parents]/[sorted_run] carry over — so callers need
    no fix-ups. Bumps the generation and invalidates the pool entries.
    Used by the build-time sizing pass ([xquec compress]); the online
    compactor uses {!reblocked}. Raises [Invalid_argument] on a
    non-positive size. *)
val reblock : t -> block_size:int -> unit

(** [reblocked t ~block_size] is the copy-on-write variant of
    {!reblock}: returns a {e fresh} container (new pool uid, generation
    0, [compaction_epoch] bumped by one) holding the same record
    sequence re-chunked at [block_size], leaving [t] fully usable for
    in-flight readers. The caller is expected to swap the result into
    the repository's container slot and then invalidate [t]'s pool
    entries ({!Buffer_pool.invalidate_container}) — which is exactly
    what {!Compactor.compact_container} does. *)
val reblocked : t -> block_size:int -> t

(** ContScan: every record in compressed-value order. Decodes all
    blocks (the pruning access paths below exist to avoid this) — in
    parallel on the {!Domain_pool} when one is configured. Decoded
    blocks are admitted at the buffer pool's LRU tail
    ({!Buffer_pool.Tail}), so a full scan cannot flush the pool's hot
    working set. *)
val scan : t -> record array

(** [fetch_blocks t ~b0 ~b1] decodes blocks [b0..b1] (inclusive) and
    returns their images in block order — the batch decode path behind
    {!scan}, {!range}, {!lookup_eq}, {!lookup_range} and {!dump}.
    Already-resident blocks are fetched on the calling domain (hits);
    the absent ones are decoded as one {!Domain_pool} batch, installing
    into the {!Buffer_pool} as they complete. With a pool of size 0, or
    fewer than two absent blocks, everything runs sequentially on the
    calling domain, with counters identical to the historical
    single-threaded path. Empty ranges ([b1 < b0]) yield [[||]].
    [?admission] (default {!Buffer_pool.Mru}) is the pool admission
    policy for miss-decoded blocks.

    Budget enforcement: the calling domain's armed
    {!Xquec_obs.Budget} (if any) is polled at entry and at each block
    fetch, and decoded bytes are charged to it — the handle is captured
    here on the evaluating domain so charges attribute correctly even
    when the decode itself runs on a pool worker. An exhausted budget
    raises {!Xquec_obs.Budget.Exceeded} out of this call. *)
val fetch_blocks :
  ?admission:Buffer_pool.admission -> t -> b0:int -> b1:int -> Buffer_pool.decoded array

(** [prefetch_blocks t ~b0 ~b1] is {!fetch_blocks} for effect only:
    warm the buffer pool with the candidate blocks of an upcoming
    scan/range without materializing records. *)
val prefetch_blocks : t -> b0:int -> b1:int -> unit

(** [get t i] is record [i] (0-based, in compressed-value order);
    decodes at most the one block holding it. Raises [Invalid_argument]
    out of bounds. *)
val get : t -> int -> record

(** [range t ~lo ~hi] is the records with indices in [lo, hi) (upper
    bound exclusive), decoding only the blocks that interval touches;
    the rest are counted as pruned ({!Buffer_pool.note_skipped}).
    Bounds are clamped to the valid index range. Like {!scan}, decoded
    blocks are admitted at the pool's LRU tail. *)
val range : t -> lo:int -> hi:int -> record list

(** First index whose code is [>=] the argument ([length t] if none).
    One header binary search plus at most one block decode. *)
val lower_bound : t -> string -> int

(** First index whose code is [>] the argument ([length t] if none). *)
val upper_bound : t -> string -> int

(** ContAccess with an equality criterion: candidate blocks are chosen
    by header min/max, only they are decoded, and matches are found by
    in-block binary search. Valid whenever the algorithm supports
    [`Eq]. *)
val lookup_eq : t -> string -> record list

(** ContAccess with an interval criterion on compressed codes
    (inclusive [lo], exclusive [hi]; [None] = unbounded). Valid only
    for order-preserving algorithms. Decodes only the blocks whose
    header range intersects the interval. *)
val lookup_range : t -> ?lo:string -> ?hi:string -> unit -> record list

(** Decompress one record's value with the container's model. *)
val decompress_record : t -> record -> string

(** Compress a query constant against this container's source model, so
    predicates can be evaluated in the compressed domain. *)
val compress_constant : t -> string -> string

(** Total bytes of the stored block payloads (the container's share of
    the repository's value area). *)
val compressed_bytes : t -> int

(** Publish per-container gauges ([container.<path>.encoded_bytes],
    [.plain_bytes], [.records], [.blocks]) when telemetry is enabled.
    Called automatically by {!build}, {!of_sorted_records} and
    {!recompress}. *)
val publish_metrics : t -> unit

(** Append the v2 wire image (block headers + verbatim payloads — a
    save/load/save cycle is byte-exact). The container flags byte
    carries bit 0 = [distinct_parents], bit 1 = [sorted_run], bit 2 =
    "per-block flags byte present" (bit 0 of which is [b_exact]), and
    bit 3 = "adaptive-sizing extension present": two varints
    [<block_size, compaction_epoch>] directly after the flags byte,
    emitted only when the block size differs from the built-in 16384 or
    the epoch is non-zero (pre-extension images and their re-saves stay
    byte-identical; old readers reject bit 3 rather than misparse).
    Images written before bits 1–2 existed load with [sorted_run] and
    every [b_exact] false. The model itself is serialized once per
    [model_id] by {!Repository}. *)
val serialize : Buffer.t -> t -> unit

(** Parse a v2 container image at [pos]; [models] maps [model_id] to
    the already-deserialized shared models. Returns the container and
    the first position past it. *)
val deserialize :
  models:(int, Compress.Codec.model) Hashtbl.t -> string -> int -> t * int

(** Parse a legacy v1 (record-at-a-time) container image, re-blocking
    its records with sizes estimated from the container average. *)
val deserialize_v1 :
  models:(int, Compress.Codec.model) Hashtbl.t -> string -> int -> t * int
