(** Compressed repository: the name dictionary, structure tree, value
    containers, shared source models and structure summary for one
    document, with byte-level serialization for the size experiments. *)

(** A loaded repository. [containers] is indexed by container id;
    [original_size] is the source document's byte size (denominator of
    the compression factor). *)
type t = {
  dict : Name_dict.t;
  tree : Structure_tree.t;
  containers : Container.t array;
  summary : Summary.t;
  source_name : string;
  original_size : int;
}

(** Container by id. Raises [Invalid_argument] if out of range. *)
val container : t -> int -> Container.t

(** Container whose assignment path equals the argument, if any. *)
val find_container_by_path : t -> string -> Container.t option

(** Distinct source models (shared-model containers count once). *)
val models : t -> (int * Compress.Codec.model) list

(** Serialized byte size per component (the §2.2 storage layout). *)
type size_breakdown = {
  name_dict_bytes : int;
  tree_bytes : int;
      (** the succinct (BP bitvector + wavelet tags, v4) tree encoding
          actually stored *)
  tree_packed_bytes : int;
      (** the packed (delta+varint) v3 tree encoding — kept so the fig6
          bench can report the v4-vs-v3 compression-factor delta *)
  tree_legacy_bytes : int;
      (** the plain-varint v2 tree encoding — kept so the fig6 bench can
          report the compression-factor delta of tree packing *)
  containers_bytes : int;
  models_bytes : int;
  summary_bytes : int;
  index_bytes : int;
      (** navigation directories (rank/select + min-excess blocks) — the
          v4 counterpart of the old B+ page index *)
  total_bytes : int;
  essential_bytes : int;
      (** without access structures: values + models + dictionary +
          a forward-only structure tree *)
}

(** Measure the serialized size of each repository component. *)
val size_breakdown : t -> size_breakdown

(** 1 - cs/os, as defined in the paper's §5. *)
val compression_factor : t -> float

(** The on-disk formats {!serialize} can write. [`V4] (default) stores
    the structure tree succinctly; [`V3] is the kill switch back to the
    packed record encoding. *)
type format = [ `V3 | `V4 ]

(** Process-wide override of the format {!serialize} writes when called
    without [?format] (the CLI's [--format] flag). Takes precedence
    over the XQUEC_FORMAT environment variable. *)
val set_default_format : format -> unit

(** The format {!serialize} writes when called without [?format]:
    {!set_default_format} if set, else XQUEC_FORMAT ("v3"/"v4"), else
    [`V4]. Raises [Failure] on an invalid XQUEC_FORMAT value. *)
val default_format : unit -> format

(** Serialize to the on-disk format: magic "XQC\x04" + format-flags
    byte with bit 1 set (succinct structure tree) for [`V4], magic
    "XQC\x03" + bit 0 (packed structure tree) for [`V3]; then the v2
    section layout with block-structured containers. A save/load/save
    cycle is byte-exact in either format. *)
val serialize : ?format:format -> t -> string

(** Parse a serialized repository. Accepts the v4 format (magic
    "XQC\x04" + format-flags byte, succinct tree), the v3 format (magic
    "XQC\x03" + format-flags byte, packed tree), the v2 format (magic
    "XQC\x02", block-structured containers, plain-varint tree) and the
    legacy v1 record-wise format (no magic); v1 containers are
    re-blocked on load. Raises [Failure] on corrupt input. *)
val deserialize : string -> t
