(* Fixed pool of OCaml 5 domains for parallel block decode.

   Design (see docs/CONCURRENCY.md): a work-stealing-free shared FIFO
   task queue guarded by one mutex, drained by [size ()] long-lived
   worker domains plus the domain that submitted the batch (the caller
   "helps" until the queue is empty, then blocks on the batch latch).
   Batches carry their own countdown latch, so concurrent [run] calls
   from different domains — e.g. two queries decoding at once — simply
   interleave their tasks on the same workers.

   A pool size of 0 (the default on single-core hosts, and the
   [--decode-domains 0] / [XQUEC_DECODE_DOMAINS=0] setting) bypasses
   the queue entirely: [run] executes the tasks in order on the calling
   domain, which restores the engine's historical sequential semantics
   exactly. Workers are spawned lazily on the first parallel batch and
   joined from an [at_exit] hook so the process never hangs on
   still-parked domains at shutdown. *)

type task = unit -> unit

(* --- configuration -------------------------------------------------- *)

let default_size () = max 0 (Domain.recommended_domain_count () - 1)

(* Initial size: $XQUEC_DECODE_DOMAINS when set to a non-negative int
   (the hook the test suite and CI matrix use), otherwise one worker per
   spare core. *)
let initial_size =
  match Sys.getenv_opt "XQUEC_DECODE_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> default_size ())
  | None -> default_size ()

(* --- pool state ------------------------------------------------------ *)

(* [pool_mutex] guards the queue, the worker list, [target_size] and
   [stop]; [pool_cond] wakes parked workers when tasks arrive or the
   pool shuts down. It is a leaf lock: nothing is called while holding
   it except Queue operations. *)
let pool_mutex = Mutex.create ()

let pool_cond = Condition.create ()

let queue : task Queue.t = Queue.create ()

let workers : unit Domain.t list ref = ref []

let target_size = ref initial_size

let stop = ref false

let at_exit_registered = ref false

(* --- statistics (all atomic: read/written from any domain) ----------- *)

let stat_batches = Atomic.make 0

let stat_tasks = Atomic.make 0 (* total tasks ever submitted to [run] *)

let stat_inline = Atomic.make 0 (* tasks executed on the calling domain *)

let stat_wall_us = Atomic.make 0 (* cumulative parallel-batch wall, µs *)

let stat_max_depth = Atomic.make 0 (* high-water queue depth, post-enqueue *)

let stat_async = Atomic.make 0 (* fire-and-forget tasks accepted by [submit] *)

(* CAS-max: lift [a] to at least [v]. *)
let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

type stats = {
  p_domains : int;
  p_batches : int;
  p_tasks : int;
  p_inline : int;
  p_wall_ms : float;
  p_max_queue_depth : int;
  p_async : int;
}

let snapshot () : stats =
  {
    p_domains = !target_size;
    p_batches = Atomic.get stat_batches;
    p_tasks = Atomic.get stat_tasks;
    p_inline = Atomic.get stat_inline;
    p_wall_ms = float_of_int (Atomic.get stat_wall_us) /. 1000.0;
    p_max_queue_depth = Atomic.get stat_max_depth;
    p_async = Atomic.get stat_async;
  }

let reset_stats () =
  Atomic.set stat_batches 0;
  Atomic.set stat_tasks 0;
  Atomic.set stat_inline 0;
  Atomic.set stat_wall_us 0;
  Atomic.set stat_max_depth 0;
  Atomic.set stat_async 0

(* --- workers --------------------------------------------------------- *)

let worker_loop () =
  let rec loop () =
    Mutex.lock pool_mutex;
    while Queue.is_empty queue && not !stop do
      Condition.wait pool_cond pool_mutex
    done;
    if Queue.is_empty queue then begin
      (* [stop] is set and no work remains: exit. *)
      Mutex.unlock pool_mutex
    end
    else begin
      let t = Queue.pop queue in
      Mutex.unlock pool_mutex;
      t ();
      loop ()
    end
  in
  loop ()

(* Join every worker. Called with [pool_mutex] NOT held. Safe to call
   repeatedly; pending tasks are drained by the exiting workers first
   (stop only wins once the queue is empty). *)
let shutdown () =
  Mutex.lock pool_mutex;
  stop := true;
  Condition.broadcast pool_cond;
  let ws = !workers in
  workers := [];
  Mutex.unlock pool_mutex;
  List.iter Domain.join ws;
  Mutex.lock pool_mutex;
  stop := false;
  Mutex.unlock pool_mutex

(* Spawn workers up to [target_size]. Called with [pool_mutex] held. *)
let ensure_workers_locked () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit shutdown
  end;
  let missing = !target_size - List.length !workers in
  for _ = 1 to missing do
    workers := Domain.spawn worker_loop :: !workers
  done

let size () = !target_size

let set_size n =
  let n = max 0 n in
  if n <> !target_size || n < List.length !workers then begin
    (* Resize by draining: join the old workers, then respawn lazily at
       the next batch. Resizes are rare (CLI startup, bench sweeps). *)
    shutdown ();
    Mutex.lock pool_mutex;
    target_size := n;
    Mutex.unlock pool_mutex
  end

(* --- batches --------------------------------------------------------- *)

type batch = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  mutable b_remaining : int;
  mutable b_exn : exn option;
}

let run_sequential (tasks : task array) =
  Array.iter
    (fun t ->
      t ();
      Atomic.incr stat_inline)
    tasks

let run_parallel (tasks : task array) =
  let b =
    {
      b_mutex = Mutex.create ();
      b_cond = Condition.create ();
      b_remaining = Array.length tasks;
      b_exn = None;
    }
  in
  (* With telemetry on, each task records a queue-wait span (enqueue →
     pickup, stamped across domains with the shared clock) and runs
     inside a "decodepool.task" span — both land in the ring buffer of
     the domain that executes the task, so the chrome-trace export shows
     decode work attributed to its worker. *)
  let traced = Xquec_obs.is_enabled () in
  let wrap t =
    let enq_us = if traced then Xquec_obs.Trace.now_us () else 0.0 in
    fun () ->
      (try
         if traced then begin
           Xquec_obs.Trace.add_span ~name:"decodepool.queue_wait" ~start_us:enq_us
             ~end_us:(Xquec_obs.Trace.now_us ()) ();
           Xquec_obs.Trace.with_span ~name:"decodepool.task" t
         end
         else t ()
       with e ->
         Mutex.lock b.b_mutex;
         (match b.b_exn with None -> b.b_exn <- Some e | Some _ -> ());
         Mutex.unlock b.b_mutex);
      Mutex.lock b.b_mutex;
      b.b_remaining <- b.b_remaining - 1;
      if b.b_remaining = 0 then Condition.broadcast b.b_cond;
      Mutex.unlock b.b_mutex
  in
  Mutex.lock pool_mutex;
  ensure_workers_locked ();
  Array.iter (fun t -> Queue.add (wrap t) queue) tasks;
  let depth = Queue.length queue in
  Condition.broadcast pool_cond;
  Mutex.unlock pool_mutex;
  atomic_max stat_max_depth depth;
  if traced then Xquec_obs.Metrics.observe "decodepool.queue_depth" (float_of_int depth);
  (* Help: the submitting domain drains the queue alongside the workers
     (it may execute tasks of a concurrent batch — harmless, their latch
     is decremented all the same). *)
  let rec help () =
    Mutex.lock pool_mutex;
    let t = if Queue.is_empty queue then None else Some (Queue.pop queue) in
    Mutex.unlock pool_mutex;
    match t with
    | Some t ->
      t ();
      Atomic.incr stat_inline;
      help ()
    | None -> ()
  in
  help ();
  Mutex.lock b.b_mutex;
  while b.b_remaining > 0 do
    Condition.wait b.b_cond b.b_mutex
  done;
  let e = b.b_exn in
  Mutex.unlock b.b_mutex;
  match e with Some e -> raise e | None -> ()

(* Fire-and-forget: enqueue one task with no batch latch — nothing ever
   waits for it, so an exception has nowhere to propagate and is
   swallowed (callers doing fallible work catch their own). Returns
   [false] without running anything when the pool is sequential
   ([size () = 0]): the caller decides whether to run inline. Used by
   the prefetcher and the background compactor, which both tolerate
   silent drops. *)
let submit (t : task) : bool =
  Mutex.lock pool_mutex;
  if !target_size = 0 then begin
    Mutex.unlock pool_mutex;
    false
  end
  else begin
    ensure_workers_locked ();
    Queue.add (fun () -> try t () with _ -> ()) queue;
    Condition.signal pool_cond;
    Mutex.unlock pool_mutex;
    Atomic.incr stat_async;
    if Xquec_obs.is_enabled () then Xquec_obs.Metrics.incr "decodepool.async_tasks";
    true
  end

let run (tasks : task array) : unit =
  let n = Array.length tasks in
  if n > 0 then begin
    Atomic.incr stat_batches;
    ignore (Atomic.fetch_and_add stat_tasks n);
    let t0 = Xquec_obs.Trace.now_us () in
    if !target_size = 0 || n = 1 then run_sequential tasks else run_parallel tasks;
    let dt = Xquec_obs.Trace.now_us () -. t0 in
    ignore (Atomic.fetch_and_add stat_wall_us (int_of_float dt));
    if Xquec_obs.is_enabled () then begin
      Xquec_obs.Metrics.incr "decodepool.batches";
      Xquec_obs.Metrics.incr ~by:n "decodepool.tasks"
    end
  end
