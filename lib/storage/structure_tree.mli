(** Structure tree (§2.2), succinct edition: the document shape as a
    balanced-parentheses bitvector, tag codes in a wavelet tree, value
    pointers and text-marker positions as the only per-node data. Ids
    are pre-order ranks; (pre, post, level) realizes the paper's
    3-valued structural ids via rank/select. Child entries interleave
    element/attribute node ids (>= 0) with text markers (< 0, indexing
    the node's value pointers) so documents reconstruct in exact
    order. *)

(** The structure tree; node ids are pre-order ranks. Value pointers
    are mutable (for container recompression); the shape is not. *)
type t

(** Number of element/attribute nodes. *)
val node_count : t -> int

(** Name-dictionary code of a node's tag. *)
val tag : t -> int -> int

(** Parent node id; -1 at the root. *)
val parent : t -> int -> int

(** Depth of a node (0 at the root). *)
val level : t -> int -> int

(** (container id, record index) pairs, in document (slot) order. *)
val value_pointers : t -> int -> (int * int) array

(** Raw child entries (node ids and text markers), document order. *)
val child_entries : t -> int -> int array

(** Child element/attribute node ids only. *)
val child_nodes : t -> int -> int list

(** First child element/attribute node, if any; always [id + 1] when
    present (pre-order numbering). *)
val first_child : t -> int -> int option

(** Next sibling element/attribute node in document order, if any. *)
val next_sibling : t -> int -> int option

(** Nodes in a node's subtree, itself included. *)
val subtree_size : t -> int -> int

(** The (pre, post, level) identifier of a node. *)
val structural_id : t -> int -> Ids.Structural.t

(** Strict-ancestor test by pre-order interval containment. *)
val is_ancestor : t -> ancestor:int -> descendant:int -> bool

(** [children_with_tag t node tag]: child node ids carrying [tag],
    document order. *)
val children_with_tag : t -> int -> int -> int list

(** Descendants of a node occupy the pre-id range (id, last_descendant]. *)
val last_descendant : t -> int -> int

(** All proper descendants of a node, document order. *)
val descendants : t -> int -> int list

(** [descendants_with_tag t node tag]: proper descendants carrying
    [tag], document order, answered by wavelet-tree rank/select over
    the subtree's pre-order interval rather than a subtree scan. *)
val descendants_with_tag : t -> int -> int -> int list

(** Rewrite value pointers after containers were recompressed. *)
val remap_values : t -> (int -> int array option) -> unit

(** Redirect one value pointer slot to a different container (used when
    splitting containers during recompression). *)
val set_value_container : t -> node:int -> slot:int -> container:int -> unit

(** Lookup through the succinct directory (select1 to the open paren,
    rank1 back) — the honest on-storage access path. *)
val find : t -> int -> int option

(** {2 Document-order construction} *)

(** Accumulates nodes as the SAX loader walks the document. *)
type builder

(** Fresh empty builder. *)
val builder : unit -> builder

(** Register a node at element open; returns its (pre-order) id. *)
val open_node : builder -> tag:int -> parent:int -> level:int -> int

(** Register the element close. Post ranks are implicit in the
    balanced-parentheses shape; this is kept for interface symmetry. *)
val close_node : builder -> id:int -> unit

(** The id the next {!open_node} will return. *)
val next_id : builder -> int

(** Freeze into the succinct tree. [rev_children] and [rev_values] hold
    each node's child entries and value pointers in reverse document
    order (as accumulated by the loader). Raises [Failure] if child
    ids are not pre-order ranks or text markers are not sequential. *)
val finish :
  builder -> rev_children:int list array -> rev_values:(int * int) list array -> t

(** Append the tree's legacy (plain-varint, repository v2) serialized
    form to the buffer. Kept for v2 read-compat and for measuring the
    packing gain. *)
val serialize : Buffer.t -> t -> unit

(** [deserialize s pos] parses a legacy (v2) tree at offset [pos],
    returning it with the offset past it. Raises [Failure] on corrupt
    input. *)
val deserialize : string -> int -> t * int

(** Append the packed (repository v3) form: per node, tag and parent
    delta as plain varints, then child-entry codes and value record
    indices as zigzag delta+varint sequences
    ({!Compress.Ipack.add_deltas}). Decodes to exactly the same tree
    as {!serialize}. *)
val serialize_packed : Buffer.t -> t -> unit

(** Invert {!serialize_packed}. Raises [Failure] on corrupt input. *)
val deserialize_packed : string -> int -> t * int

(** Append the succinct (repository v4) form: node count, the raw BP
    bitvector, the wavelet tag levels, then per node its delta-packed
    value record indices, marker count (only when it has values) and
    explicit marker positions (only for mixed content). No parent
    pointers, child lists, post ranks or page index are stored. *)
val serialize_succinct : Buffer.t -> t -> unit

(** Invert {!serialize_succinct}. Raises [Failure] on corrupt input. *)
val deserialize_succinct : string -> int -> t * int

(** Forward-only tree bytes for the essential-size experiment: shape
    bits + tag levels + marker info, no parent support, no value
    back-pointers, no rank directories. *)
val forward_only_bytes : t -> int

(** Size of the navigation directories (rank/select + min-excess blocks)
    — the v4 counterpart of the old B+ page index in the §2.2
    breakdown. *)
val index_bytes : t -> int
