(** Structure tree (§2.2): one record per non-value node, holding tag
    code, (redundant) parent pointer, child entries and value pointers.
    Ids are pre-order ranks; (pre, post, level) realizes the paper's
    3-valued structural ids. Child entries interleave element/attribute
    node ids (>= 0) with text markers (< 0, indexing the node's value
    pointers) so documents reconstruct in exact order. *)

(** The immutable structure tree; node ids are pre-order ranks. *)
type t

(** Number of element/attribute nodes. *)
val node_count : t -> int

(** Name-dictionary code of a node's tag. *)
val tag : t -> int -> int

(** Parent node id; -1 at the root. *)
val parent : t -> int -> int

(** Depth of a node (0 at the root). *)
val level : t -> int -> int

(** (container id, record index) pairs, in document (slot) order. *)
val value_pointers : t -> int -> (int * int) array

(** Raw child entries (node ids and text markers), document order. *)
val child_entries : t -> int -> int array

(** Child element/attribute node ids only. *)
val child_nodes : t -> int -> int list

(** The (pre, post, level) identifier of a node. *)
val structural_id : t -> int -> Ids.Structural.t

(** Constant-time strict-ancestor test via pre/post ranks. *)
val is_ancestor : t -> ancestor:int -> descendant:int -> bool

(** [children_with_tag t node tag]: child node ids carrying [tag],
    document order. *)
val children_with_tag : t -> int -> int -> int list

(** Descendants of a node occupy the pre-id range (id, last_descendant]. *)
val last_descendant : t -> int -> int

(** All proper descendants of a node, document order. *)
val descendants : t -> int -> int list

(** Rewrite value pointers after containers were recompressed. *)
val remap_values : t -> (int -> int array option) -> unit

(** Redirect one value pointer slot to a different container (used when
    splitting containers during recompression). *)
val set_value_container : t -> node:int -> slot:int -> container:int -> unit

(** Lookup through the sparse B+ page index (the honest on-storage
    access path). *)
val find : t -> int -> int option

(** {2 Document-order construction} *)

(** Accumulates nodes as the SAX loader walks the document. *)
type builder

(** Fresh empty builder. *)
val builder : unit -> builder

(** Register a node at element open; returns its (pre-order) id. *)
val open_node : builder -> tag:int -> parent:int -> level:int -> int

(** Register the element close, fixing the node's post rank. *)
val close_node : builder -> id:int -> unit

(** The id the next {!open_node} will return. *)
val next_id : builder -> int

(** Freeze into an immutable tree. [rev_children] and [rev_values] hold
    each node's child entries and value pointers in reverse document
    order (as accumulated by the loader). *)
val finish :
  builder -> rev_children:int list array -> rev_values:(int * int) list array -> t

(** Append the tree's legacy (plain-varint, repository v2) serialized
    form to the buffer. Kept for v2 read-compat and for measuring the
    packing gain; new images use {!serialize_packed}. *)
val serialize : Buffer.t -> t -> unit

(** [deserialize s pos] parses a legacy (v2) tree at offset [pos],
    returning it with the offset past it. Raises [Failure] on corrupt
    input. *)
val deserialize : string -> int -> t * int

(** Append the packed (repository v3) form: per node, tag and parent
    delta as plain varints, then child-entry codes and value record
    indices as zigzag delta+varint sequences
    ({!Compress.Ipack.add_deltas}) — successive sibling codes differ by
    twice the sibling's subtree size, so wide fan-out nodes shrink to
    ~1 byte per child. Decodes to exactly the same tree as
    {!serialize}. *)
val serialize_packed : Buffer.t -> t -> unit

(** Invert {!serialize_packed}. Raises [Failure] on corrupt input. *)
val deserialize_packed : string -> int -> t * int

(** Size of the B+ access structure (for the §2.2 breakdown). *)
val index_bytes : t -> int
