(** Succinct bitvector with two-level rank/select directories — the
    substrate of the balanced-parentheses structure tree (repository
    format v4). Only the raw bits are serialized; the directories
    (cumulative popcounts per 512-bit superblock, per-64-bit-block
    counts) are rebuilt at load time. *)

(** An immutable bitvector with rank/select support. *)
type t

(** Length in bits. *)
val length : t -> int

(** Number of set bits. *)
val ones : t -> int

(** Number of clear bits. *)
val zeros : t -> int

(** [get t i] is bit [i] (0-based). Raises [Invalid_argument] out of
    range. *)
val get : t -> int -> bool

(** [of_bytes ~len data] wraps [len] bits packed LSB-first, 8 per byte.
    Takes ownership of [data] ([(len+7)/8] bytes; padding bits are
    zeroed) and builds the rank directories. *)
val of_bytes : len:int -> Bytes.t -> t

(** [init len f] builds a bitvector with bit [i] set iff [f i]. *)
val init : int -> (int -> bool) -> t

(** [rank1 t i]: number of set bits in positions [0, i). Defined for
    [0 <= i <= length t]. *)
val rank1 : t -> int -> int

(** [rank0 t i]: number of clear bits in positions [0, i). *)
val rank0 : t -> int -> int

(** [select1 t k]: position of the [k]-th set bit, 1-based. Raises
    [Invalid_argument] unless [1 <= k <= ones t]. *)
val select1 : t -> int -> int

(** [select0 t k]: position of the [k]-th clear bit, 1-based. *)
val select0 : t -> int -> int

(** Bytes of raw bit data (what {!serialize} writes past the length). *)
val data_bytes : t -> int

(** Compact on-storage footprint of the rank directory (4 B per
    superblock + 2 B per block) — charged to the occupancy breakdown
    even though the in-memory arrays are rebuilt wider at load. *)
val overhead_bytes : t -> int

(** Append the varint bit length followed by the packed bytes. *)
val serialize : Buffer.t -> t -> unit

(** [deserialize s pos] inverts {!serialize}, returning the vector and
    the position past it. Raises [Failure] on truncated input. *)
val deserialize : string -> int -> t * int

(** Wavelet tree over an integer-code sequence (the structure tree's
    tag array): [access]/[rank]/[select] in O(width) bitvector
    operations, stored as [width] level bitvectors of [n] bits in the
    pointerless levelwise layout. *)
module Wavelet : sig
  (** An immutable code sequence with rank/select by code. *)
  type t

  (** Number of codes in the sequence. *)
  val length : t -> int

  (** Bits per code. *)
  val width : t -> int

  (** Smallest width (>= 1) that represents [max_code]. *)
  val width_for : int -> int

  (** [build ~width codes] encodes the sequence; every code must fit in
      [width] bits. *)
  val build : width:int -> int array -> t

  (** [access t i]: the code at position [i]. *)
  val access : t -> int -> int

  (** [rank t ~code i]: occurrences of [code] in positions [0, i). *)
  val rank : t -> code:int -> int -> int

  (** [select t ~code k]: position of the [k]-th occurrence of [code]
      (1-based), or [None] if there are fewer than [k]. *)
  val select : t -> code:int -> int -> int option

  (** Raw bit payload in bytes ([n * width / 8] rounded up per level). *)
  val data_bytes : t -> int

  (** Compact rank-directory footprint across levels. *)
  val overhead_bytes : t -> int

  (** Append varint [length], varint [width], then each level's packed
      bits (directories are rebuilt at load). *)
  val serialize : Buffer.t -> t -> unit

  (** [deserialize s pos] inverts {!serialize}, returning the tree and
      the position past it. Raises [Failure] on corrupt input. *)
  val deserialize : string -> int -> t * int
end
