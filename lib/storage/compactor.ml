(* Background container compaction: re-block a live container toward a
   recommended block size and swap it into the repository without
   stopping query traffic.

   The swap protocol is copy-on-write and relies on three facts:

   1. {!Container.reblocked} builds a FRESH container (new pool uid,
      generation 0, epoch+1) holding the same record sequence — the
      original stays fully readable while the rebuild decodes its
      blocks (tail admission, so the rebuild cannot flush the hot set).
   2. [repo.containers.(id) <- fresh] is a single pointer store into a
      boxed-value array. A concurrent reader sees either the old or the
      new container — both answer every query identically (same codes,
      same parents, same order), so response bytes cannot change across
      the swap. Readers that already hold the old container keep using
      it; its blocks stay decodable for as long as the value is
      reachable.
   3. [Buffer_pool.invalidate_container ~uid:old] afterwards releases
      the old blocks' budget share (new lookups can no longer produce
      the old uid, so nothing re-populates them — stragglers holding
      the old container may re-decode, which is correct, just unpaid
      for by the cache).

   Concurrency discipline: one [compact_mutex] serializes compaction
   passes (two concurrent re-blocks of one container would waste work,
   not corrupt — the mutex exists for predictability and for the
   busy-flag the server exposes). The async entry point [request] runs
   the pass as a single fire-and-forget {!Domain_pool} task; a pool of
   size 0 falls back to running synchronously on the caller. *)

type result = {
  c_path : string;
  c_id : int;
  c_records : int;
  c_block_size_before : int;
  c_block_size_after : int;
  c_blocks_before : int;
  c_blocks_after : int;
  c_invalidated : int;
  c_epoch : int;
  c_wall_ms : float;
}

(* --- cumulative stats + a small ring of recent results --------------- *)

let stat_compactions = Atomic.make 0

let stat_blocks_rewritten = Atomic.make 0

let stat_bytes_rewritten = Atomic.make 0

type stats = { k_compactions : int; k_blocks_rewritten : int; k_bytes_rewritten : int }

let snapshot () : stats =
  {
    k_compactions = Atomic.get stat_compactions;
    k_blocks_rewritten = Atomic.get stat_blocks_rewritten;
    k_bytes_rewritten = Atomic.get stat_bytes_rewritten;
  }

let reset_stats () =
  Atomic.set stat_compactions 0;
  Atomic.set stat_blocks_rewritten 0;
  Atomic.set stat_bytes_rewritten 0

let recent_cap = 16

let recent_mutex = Mutex.create ()

let recent_ring : result list ref = ref []

let push_recent r =
  Mutex.lock recent_mutex;
  recent_ring := r :: (if List.length !recent_ring >= recent_cap then
                         List.filteri (fun i _ -> i < recent_cap - 1) !recent_ring
                       else !recent_ring);
  Mutex.unlock recent_mutex

let recent () =
  Mutex.lock recent_mutex;
  let r = !recent_ring in
  Mutex.unlock recent_mutex;
  r

(* --- planning -------------------------------------------------------- *)

let plan (repo : Repository.t) (recs : (string * float) list) : (int * int) list =
  List.filter_map
    (fun (path, factor) ->
      match Repository.find_container_by_path repo path with
      | None -> None
      | Some c ->
        if factor <= 0.0 || c.Container.n_records = 0 then None
        else begin
          let proposed =
            Container.clamp_block_size
              (int_of_float (float_of_int c.Container.block_size *. factor))
          in
          if proposed = c.Container.block_size then None
          else Some (c.Container.id, proposed)
        end)
    recs

(* --- the pass -------------------------------------------------------- *)

let compact_mutex = Mutex.create ()

let busy_flag = Atomic.make false

let busy () = Atomic.get busy_flag

let compact_container (repo : Repository.t) ~(id : int) ~(block_size : int) : result =
  if id < 0 || id >= Array.length repo.Repository.containers then
    invalid_arg "Compactor.compact_container";
  let block_size = Container.clamp_block_size block_size in
  Mutex.lock compact_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock compact_mutex)
    (fun () ->
      let old = repo.Repository.containers.(id) in
      let t0 = Xquec_obs.Trace.now_us () in
      Xquec_obs.Trace.with_span ~name:"compactor.compact"
        ~attrs:
          [ ("path", old.Container.path); ("block_size", string_of_int block_size) ]
      @@ fun () ->
      let fresh = Container.reblocked old ~block_size in
      (* the swap: a single boxed-pointer store; see the module header *)
      repo.Repository.containers.(id) <- fresh;
      let invalidated = Buffer_pool.invalidate_container ~uid:old.Container.uid in
      let wall_ms = (Xquec_obs.Trace.now_us () -. t0) /. 1000.0 in
      let r =
        {
          c_path = old.Container.path;
          c_id = id;
          c_records = old.Container.n_records;
          c_block_size_before = old.Container.block_size;
          c_block_size_after = block_size;
          c_blocks_before = Array.length old.Container.blocks;
          c_blocks_after = Array.length fresh.Container.blocks;
          c_invalidated = invalidated;
          c_epoch = fresh.Container.compaction_epoch;
          c_wall_ms = wall_ms;
        }
      in
      Atomic.incr stat_compactions;
      ignore
        (Atomic.fetch_and_add stat_blocks_rewritten
           (Array.length fresh.Container.blocks));
      ignore
        (Atomic.fetch_and_add stat_bytes_rewritten (Container.compressed_bytes fresh));
      if Xquec_obs.is_enabled () then begin
        Xquec_obs.Metrics.incr "compactor.compactions";
        Xquec_obs.Metrics.incr ~by:(Array.length fresh.Container.blocks)
          "compactor.blocks_rewritten";
        Xquec_obs.Metrics.observe "compactor.compact_ms" wall_ms
      end;
      push_recent r;
      r)

let compact (repo : Repository.t) ~(targets : (int * int) list) : result list =
  List.map (fun (id, bs) -> compact_container repo ~id ~block_size:bs) targets

let request (repo : Repository.t) ~(targets : (int * int) list) : bool =
  if targets = [] then false
  else if not (Atomic.compare_and_set busy_flag false true) then false
  else begin
    let task () =
      Fun.protect
        ~finally:(fun () -> Atomic.set busy_flag false)
        (fun () -> try ignore (compact repo ~targets) with _ -> ())
    in
    if not (Domain_pool.submit task) then task ();
    true
  end

(* --- status ---------------------------------------------------------- *)

let status_json () : Xquec_obs.Json.t =
  let s = snapshot () in
  let result_json (r : result) =
    Xquec_obs.Json.Obj
      [
        ("container", Xquec_obs.Json.Str r.c_path);
        ("id", Xquec_obs.Json.Num (float_of_int r.c_id));
        ("records", Xquec_obs.Json.Num (float_of_int r.c_records));
        ("block_size_before", Xquec_obs.Json.Num (float_of_int r.c_block_size_before));
        ("block_size_after", Xquec_obs.Json.Num (float_of_int r.c_block_size_after));
        ("blocks_before", Xquec_obs.Json.Num (float_of_int r.c_blocks_before));
        ("blocks_after", Xquec_obs.Json.Num (float_of_int r.c_blocks_after));
        ("invalidated", Xquec_obs.Json.Num (float_of_int r.c_invalidated));
        ("epoch", Xquec_obs.Json.Num (float_of_int r.c_epoch));
        ("wall_ms", Xquec_obs.Json.Num r.c_wall_ms);
      ]
  in
  Xquec_obs.Json.Obj
    [
      ("busy", Xquec_obs.Json.Bool (busy ()));
      ("compactions", Xquec_obs.Json.Num (float_of_int s.k_compactions));
      ("blocks_rewritten", Xquec_obs.Json.Num (float_of_int s.k_blocks_rewritten));
      ("bytes_rewritten", Xquec_obs.Json.Num (float_of_int s.k_bytes_rewritten));
      ("recent", Xquec_obs.Json.List (List.map result_json (recent ())));
    ]
