(* Balanced-parentheses succinct tree (repository format v4): the
   document shape as 2n bits — '(' on element open, ')' on close, in
   document order — so node i's identity is the position of the i-th
   open paren and every navigation primitive (parent, first child, next
   sibling, subtree size, depth, post rank) is answered by rank/select
   plus excess search over the bitvector, with no per-node pointers.

   Excess search uses a one-level range-min directory (the practical
   core of the rmM-tree of Navarro & Sadakane): the minimum excess per
   256-bit block, with a segment tree over the block minima to locate
   the nearest block that can contain the sought excess, then a bit
   scan inside that block. All searches here look for an excess value
   strictly below every excess on the skipped prefix/suffix, so block
   minima alone decide containment (the excess walk is ±1-continuous:
   a block whose minimum is <= the target and which is entered above
   the target must cross it). *)

let block_bits = 256

type t = {
  bits : Bitvec.t;  (* 2n bits; bit set = '(' *)
  n : int;  (* node count *)
  block_min : int array;  (* min excess E(j) per block of positions *)
  seg : int array;  (* 1-based segment tree over block minima *)
  seg_size : int;  (* leaf count (power of two) *)
}

let bits t = t.bits

let node_count t = t.n

(* E(j): number of opens minus closes in positions [0, j]. E(-1) = 0. *)
let excess t j = (2 * Bitvec.rank1 t.bits (j + 1)) - (j + 1)

let of_bits (bits : Bitvec.t) : t =
  let len = Bitvec.length bits in
  if len land 1 <> 0 then failwith "Bp_tree.of_bits: odd length";
  let n = len / 2 in
  if Bitvec.ones bits <> n then failwith "Bp_tree.of_bits: unbalanced";
  let nblocks = (len + block_bits - 1) / block_bits in
  let block_min = Array.make (max nblocks 1) max_int in
  let e = ref 0 in
  for j = 0 to len - 1 do
    e := !e + (if Bitvec.get bits j then 1 else -1);
    if !e < 0 then failwith "Bp_tree.of_bits: close before open";
    let b = j / block_bits in
    if !e < block_min.(b) then block_min.(b) <- !e
  done;
  if len > 0 && !e <> 0 then failwith "Bp_tree.of_bits: unbalanced";
  let seg_size =
    let s = ref 1 in
    while !s < nblocks do
      s := !s * 2
    done;
    !s
  in
  let seg = Array.make (2 * seg_size) max_int in
  for b = 0 to nblocks - 1 do
    seg.(seg_size + b) <- block_min.(b)
  done;
  for i = seg_size - 1 downto 1 do
    seg.(i) <- min seg.(2 * i) seg.((2 * i) + 1)
  done;
  { bits; n; block_min; seg; seg_size }

(* Leftmost block index >= [l] whose min excess is <= [target]; -1 if
   none. *)
let leftmost_block_le t ~l ~target =
  let rec go node lo hi =
    if hi <= l || t.seg.(node) > target then -1
    else if hi - lo = 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      let r = go (2 * node) lo mid in
      if r >= 0 then r else go ((2 * node) + 1) mid hi
    end
  in
  go 1 0 t.seg_size

(* Rightmost block index < [r] whose min excess is <= [target]; -1 if
   none. *)
let rightmost_block_le t ~r ~target =
  let rec go node lo hi =
    if lo >= r || t.seg.(node) > target then -1
    else if hi - lo = 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      let x = go ((2 * node) + 1) mid hi in
      if x >= 0 then x else go (2 * node) lo mid
    end
  in
  go 1 0 t.seg_size

(* Smallest j >= [from] with E(j) = [target]. Precondition (holds for
   every caller): target < E(from - 1), and the excess stays above
   [target] on [from-1, answer). Raises if there is no answer. *)
let fwd_search t ~from ~target =
  let len = Bitvec.length t.bits in
  let e = ref (excess t (from - 1)) in
  let j = ref from in
  let block_end = (((from / block_bits) + 1) * block_bits) - 1 in
  let result = ref (-1) in
  while !result < 0 && !j <= min block_end (len - 1) do
    e := !e + (if Bitvec.get t.bits !j then 1 else -1);
    if !e = target then result := !j else incr j
  done;
  if !result >= 0 then !result
  else begin
    match leftmost_block_le t ~l:((from / block_bits) + 1) ~target with
    | -1 -> failwith "Bp_tree.fwd_search: not found"
    | b ->
      let start = b * block_bits in
      let e = ref (excess t (start - 1)) in
      let j = ref start in
      while !result < 0 do
        e := !e + (if Bitvec.get t.bits !j then 1 else -1);
        if !e = target then result := !j else incr j
      done;
      !result
  end

(* Largest j < [from] with E(j) = [target], counting the virtual
   position -1 with E(-1) = 0. Precondition: the excess stays above
   [target] on (answer, from). [None] if there is no such j. *)
let bwd_search t ~from ~target =
  let scan_down ~j0 ~e0 ~stop =
    (* e0 = E(j0); walk j down to [stop], returning the first hit *)
    let e = ref e0 and j = ref j0 in
    let result = ref None in
    while !result = None && !j >= stop do
      if !e = target then result := Some !j
      else begin
        e := !e - (if Bitvec.get t.bits !j then 1 else -1);
        decr j
      end
    done;
    !result
  in
  let from_block = from / block_bits in
  let block_start = from_block * block_bits in
  match scan_down ~j0:(from - 1) ~e0:(excess t (from - 1)) ~stop:block_start with
  | Some j -> Some j
  | None -> (
    match rightmost_block_le t ~r:from_block ~target with
    | -1 -> if target = 0 then Some (-1) else None
    | b ->
      let last = ((b + 1) * block_bits) - 1 in
      scan_down ~j0:last ~e0:(excess t last) ~stop:(b * block_bits))

(* --- parenthesis-level operations ----------------------------------- *)

let pos_of_node t i =
  if i < 0 || i >= t.n then invalid_arg "Bp_tree.pos_of_node";
  Bitvec.select1 t.bits (i + 1)

let node_of_open t p = Bitvec.rank1 t.bits (p + 1) - 1

let findclose t p = fwd_search t ~from:(p + 1) ~target:(excess t p - 1)

let findopen t c =
  match bwd_search t ~from:c ~target:(excess t c) with
  | Some j -> j + 1
  | None -> failwith "Bp_tree.findopen: not a close"

let enclose t p =
  let d = excess t p in
  if d < 2 then None
  else
    match bwd_search t ~from:p ~target:(d - 2) with
    | Some j -> Some (j + 1)
    | None -> None

(* --- node-level operations (ids are pre-order ranks) ---------------- *)

let parent t i =
  match enclose t (pos_of_node t i) with None -> -1 | Some q -> node_of_open t q

let depth t i = excess t (pos_of_node t i) - 1

let first_child t i =
  let p = pos_of_node t i in
  if p + 1 < Bitvec.length t.bits && Bitvec.get t.bits (p + 1) then Some (i + 1) else None

let next_sibling t i =
  let c = findclose t (pos_of_node t i) in
  if c + 1 < Bitvec.length t.bits && Bitvec.get t.bits (c + 1) then
    Some (node_of_open t (c + 1))
  else None

let children t i =
  let rec collect acc = function
    | None -> List.rev acc
    | Some c -> collect (c :: acc) (next_sibling t c)
  in
  collect [] (first_child t i)

let degree t i =
  let rec count acc = function None -> acc | Some c -> count (acc + 1) (next_sibling t c) in
  count 0 (first_child t i)

let last_descendant t i = Bitvec.rank1 t.bits (findclose t (pos_of_node t i)) - 1

let subtree_size t i = last_descendant t i - i + 1

let post_rank t i = Bitvec.rank0 t.bits (findclose t (pos_of_node t i) + 1) - 1

let is_ancestor t ~ancestor ~descendant =
  ancestor < descendant && last_descendant t ancestor >= descendant

(* Compact directory footprint past the raw bits: the bitvector's rank
   directory plus 2 bytes of block-minimum per 256-bit block (the
   segment tree is rebuilt at load, as are all directories). *)
let overhead_bytes t = Bitvec.overhead_bytes t.bits + (2 * Array.length t.block_min)
