(* Process-wide buffer pool: an LRU cache of decoded container blocks
   with a byte budget, shared by every container in every open
   repository. Containers decode at most the blocks a predicate
   touches (demand paging); repeated access to the same blocks — warm
   joins, repeated queries — hits here instead of re-decoding.

   THREAD SAFETY (see docs/CONCURRENCY.md). Since the parallel-decode
   subsystem landed, the pool is shared by the main domain and the
   Domain_pool workers:

   - one process-wide [lock] guards the hash table, the LRU list and
     the resident-size accounting. It is a leaf lock: decode thunks
     run OUTSIDE it.
   - an in-flight decode is a [Pending] latch in the table. A second
     requester of the same block finds the latch and blocks on it
     instead of decoding again (counted as [s_latch_waits]); the
     decoder installs the finished block and broadcasts. Every fetch
     is therefore exactly one of: hit, miss (this caller decoded) or
     latch wait. With a sequential pool (--decode-domains 0) waits
     are structurally impossible and the counters coincide with the
     historical single-threaded ones.
   - cumulative counters are atomics so any domain may bump them and
     [snapshot] needs no lock for them.

   Entries are keyed by (container uid, generation, block index): the
   uid is process-unique (two repositories never collide), and a
   container bumps its generation when it is recompressed so stale
   entries can never be returned; [invalidate] additionally drops them
   eagerly so they stop occupying budget.

   The pool keeps its own cumulative counters unconditionally (they are
   a handful of atomic adds) so EXPLAIN can attribute per-operator cache
   activity even when the global metrics switch is off; the same events
   are mirrored into [Xquec_obs.Metrics] under "bufferpool.*" when
   telemetry is enabled. *)

type key = { k_uid : int; k_gen : int; k_blk : int }

(** A decoded block: parallel arrays of still-compressed codes and
    parent ids, plus the byte charge this entry puts on the budget. *)
type decoded = { codes : string array; parents : int array; d_bytes : int }

(* intrusive doubly-linked LRU list; [lru_front] is most recent *)
type node = {
  nkey : key;
  value : decoded;
  mutable prev : node option;  (* towards the front (more recent) *)
  mutable next : node option;  (* towards the back (less recent) *)
  mutable n_prefetched : bool;  (* installed by prefetch, not yet demanded *)
}

(* A latch for an in-flight decode. Lifecycle: created under the pool
   lock in state [L_decoding]; the decoding domain completes it to
   [L_done] (after installing the block) or [L_failed] and broadcasts;
   waiters block on [l_cond] until the state leaves [L_decoding]. *)
type latch = {
  l_mutex : Mutex.t;
  l_cond : Condition.t;
  mutable l_state : latch_state;
}

and latch_state = L_decoding | L_done of decoded | L_failed of exn

type entry = Resident of node | Pending of latch

(* Where a freshly decoded block enters the LRU list. [Mru] (the
   default) is classic LRU insertion at the front. [Tail] is the
   scan-resistant policy: sequential scans insert at the back, so a
   one-pass scan of a huge container churns only the cold end of the
   list and cannot flush the hot working set; a block that IS
   re-referenced gets promoted to the front by the hit path's [touch]
   like any other entry. *)
type admission = Mru | Tail

let lock = Mutex.create ()

let table : (key, entry) Hashtbl.t = Hashtbl.create 1024

let lru_front : node option ref = ref None

let lru_back : node option ref = ref None

let default_budget_bytes = 64 * 1024 * 1024

let budget_ref = ref default_budget_bytes

(* cumulative, never reset by eviction; atomic so any domain may bump *)
let hits = Atomic.make 0

let misses = Atomic.make 0

let latch_waits = Atomic.make 0

let evictions = Atomic.make 0

let decoded_bytes = Atomic.make 0

let blocks_skipped = Atomic.make 0

let scan_inserts = Atomic.make 0 (* blocks admitted at the LRU tail *)

(* Invalidation drops are accounted separately from [evictions]:
   evictions measure capacity pressure, invalidations measure container
   churn (recompression / compaction swaps). Mixing them made hit-rate
   alerts misread a swap as thrash. *)
let invalidations = Atomic.make 0

let prefetch_fills = Atomic.make 0 (* blocks decoded ahead of the cursor *)

let prefetch_hits = Atomic.make 0 (* demand fetches served by a prefetched block *)

(* compressed-payload bytes actually decoded vs. pruned via headers —
   the same unit on both sides, so a query log can report a meaningful
   decoded-vs-skipped ratio (d_bytes above is the in-memory charge,
   which is not comparable to pruned on-disk payload bytes). *)
let payload_bytes = Atomic.make 0

let skipped_bytes = Atomic.make 0

(* resident accounting: guarded by [lock] *)
let resident_bytes = ref 0

let resident_blocks = ref 0

type stats = {
  s_hits : int;
  s_misses : int;
  s_latch_waits : int;
  s_evictions : int;
  s_decoded_bytes : int;
  s_blocks_skipped : int;
  s_scan_inserts : int;
  s_invalidations : int;
  s_prefetch_fills : int;
  s_prefetch_hits : int;
  s_payload_bytes : int;
  s_skipped_bytes : int;
  s_resident_bytes : int;
  s_resident_blocks : int;
}

let snapshot () : stats =
  Mutex.lock lock;
  let rb = !resident_bytes and rn = !resident_blocks in
  Mutex.unlock lock;
  {
    s_hits = Atomic.get hits;
    s_misses = Atomic.get misses;
    s_latch_waits = Atomic.get latch_waits;
    s_evictions = Atomic.get evictions;
    s_decoded_bytes = Atomic.get decoded_bytes;
    s_blocks_skipped = Atomic.get blocks_skipped;
    s_scan_inserts = Atomic.get scan_inserts;
    s_invalidations = Atomic.get invalidations;
    s_prefetch_fills = Atomic.get prefetch_fills;
    s_prefetch_hits = Atomic.get prefetch_hits;
    s_payload_bytes = Atomic.get payload_bytes;
    s_skipped_bytes = Atomic.get skipped_bytes;
    s_resident_bytes = rb;
    s_resident_blocks = rn;
  }

let budget_bytes () = !budget_ref

(* --- LRU list surgery (all called with [lock] held) ------------------ *)

let unlink (n : node) : unit =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> lru_front := n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> lru_back := n.prev);
  n.prev <- None;
  n.next <- None

let push_front (n : node) : unit =
  n.next <- !lru_front;
  n.prev <- None;
  (match !lru_front with Some f -> f.prev <- Some n | None -> lru_back := Some n);
  lru_front := Some n

(* Tail insertion for scan admission: the block becomes the next
   eviction victim unless it is re-referenced first. *)
let push_back (n : node) : unit =
  n.prev <- !lru_back;
  n.next <- None;
  (match !lru_back with Some b -> b.next <- Some n | None -> lru_front := Some n);
  lru_back := Some n

let touch (n : node) : unit =
  if !lru_front != Some n then begin
    unlink n;
    push_front n
  end

let publish_residency () =
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.set_gauge "bufferpool.resident_bytes" (float_of_int !resident_bytes);
    Xquec_obs.Metrics.set_gauge "bufferpool.resident_blocks" (float_of_int !resident_blocks)
  end

let drop (n : node) : unit =
  unlink n;
  Hashtbl.remove table n.nkey;
  resident_bytes := !resident_bytes - n.value.d_bytes;
  resident_blocks := !resident_blocks - 1

(* Evict from the back until within budget. [keep] (when given) is never
   evicted, so a single MRU-admitted block larger than the whole budget
   still works (it is simply the only resident block). A tail-admitted
   scan block gets no such protection ([keep = None]): it may evict
   itself immediately, which is exactly what keeps a huge scan from
   displacing anything. Pending latches are not in the LRU list, so an
   in-flight decode can never be evicted. *)
let rec evict_to_budget ~(keep : node option) : unit =
  if !resident_bytes > !budget_ref then begin
    match !lru_back with
    | Some n when (match keep with Some k -> k != n | None -> true) ->
      drop n;
      Atomic.incr evictions;
      if Xquec_obs.is_enabled () then Xquec_obs.Metrics.incr "bufferpool.evictions";
      evict_to_budget ~keep
    | Some _ | None -> ()
  end

(* --- public API ----------------------------------------------------- *)

let set_budget ~(bytes : int) : unit =
  Mutex.lock lock;
  budget_ref := max 0 bytes;
  (* shrink immediately; keep at least the most recent entry *)
  evict_to_budget ~keep:!lru_front;
  Mutex.unlock lock

let resident ~(uid : int) ~(gen : int) ~(blk : int) : bool =
  let key = { k_uid = uid; k_gen = gen; k_blk = blk } in
  Mutex.lock lock;
  let r = match Hashtbl.find_opt table key with Some (Resident _) -> true | _ -> false in
  Mutex.unlock lock;
  r

(* Block on [l] until its decode completes; re-raise its failure. *)
let await_latch (l : latch) : decoded =
  Atomic.incr latch_waits;
  if Xquec_obs.is_enabled () then Xquec_obs.Metrics.incr "bufferpool.latch_waits";
  Mutex.lock l.l_mutex;
  let rec wait () =
    match l.l_state with
    | L_decoding ->
      Condition.wait l.l_cond l.l_mutex;
      wait ()
    | st -> st
  in
  let st = wait () in
  Mutex.unlock l.l_mutex;
  match st with
  | L_done v -> v
  | L_failed e -> raise e
  | L_decoding -> assert false

(* Complete [l] and wake every waiter. *)
let settle_latch (l : latch) (st : latch_state) : unit =
  Mutex.lock l.l_mutex;
  l.l_state <- st;
  Condition.broadcast l.l_cond;
  Mutex.unlock l.l_mutex

let fetch ?(admission = Mru) ~(uid : int) ~(gen : int) ~(blk : int)
    (decode : unit -> decoded) : decoded =
  let key = { k_uid = uid; k_gen = gen; k_blk = blk } in
  Mutex.lock lock;
  match Hashtbl.find_opt table key with
  | Some (Resident n) ->
    touch n;
    let was_prefetched = n.n_prefetched in
    n.n_prefetched <- false;
    Mutex.unlock lock;
    Atomic.incr hits;
    if was_prefetched then Atomic.incr prefetch_hits;
    if Xquec_obs.is_enabled () then begin
      Xquec_obs.Metrics.incr "bufferpool.hits";
      if was_prefetched then Xquec_obs.Metrics.incr "bufferpool.prefetch_hits"
    end;
    n.value
  | Some (Pending l) ->
    Mutex.unlock lock;
    await_latch l
  | None ->
    let l = { l_mutex = Mutex.create (); l_cond = Condition.create (); l_state = L_decoding } in
    Hashtbl.replace table key (Pending l);
    Mutex.unlock lock;
    Atomic.incr misses;
    (match decode () with
    | v ->
      Mutex.lock lock;
      (* Install only if we still own the slot: [invalidate] / [clear]
         may have raced with the decode, in which case the result is
         handed to the waiters but not cached. *)
      (match Hashtbl.find_opt table key with
      | Some (Pending l') when l' == l ->
        let n = { nkey = key; value = v; prev = None; next = None; n_prefetched = false } in
        Hashtbl.replace table key (Resident n);
        resident_bytes := !resident_bytes + v.d_bytes;
        resident_blocks := !resident_blocks + 1;
        (match admission with
        | Mru ->
          push_front n;
          evict_to_budget ~keep:(Some n)
        | Tail ->
          (* Scan admission: enter at the eviction end and get no
             protection from the budget pass — an over-budget scan
             block evicts itself rather than anything hot. *)
          push_back n;
          Atomic.incr scan_inserts;
          if Xquec_obs.is_enabled () then
            Xquec_obs.Metrics.incr "bufferpool.scan_inserts";
          evict_to_budget ~keep:None)
      | _ -> ());
      Mutex.unlock lock;
      ignore (Atomic.fetch_and_add decoded_bytes v.d_bytes);
      if Xquec_obs.is_enabled () then begin
        Xquec_obs.Metrics.incr "bufferpool.misses";
        Xquec_obs.Metrics.incr ~by:v.d_bytes "bufferpool.decoded_bytes";
        Mutex.lock lock;
        publish_residency ();
        Mutex.unlock lock
      end;
      settle_latch l (L_done v);
      v
    | exception e ->
      Mutex.lock lock;
      (match Hashtbl.find_opt table key with
      | Some (Pending l') when l' == l -> Hashtbl.remove table key
      | _ -> ());
      Mutex.unlock lock;
      settle_latch l (L_failed e);
      raise e)

(* Speculative fill ahead of a sequential cursor. Differs from [fetch]
   in accounting only: a prefetch decode is NOT a miss (the query never
   asked for the block yet), it is a [prefetch_fills]; the later demand
   [fetch] then lands on the hit path (tagged, so it also counts as a
   [prefetch_hits]). If the block is already resident or another decode
   of it is in flight, the call is a cheap no-op — in particular a
   prefetch never blocks on a latch. Admission is [Tail]: read-ahead
   belongs to the scan's cold end of the list and must not displace the
   hot working set; an over-budget prefetch simply evicts itself.
   Returns [true] iff this call decoded and installed the block. *)
let prefetch ~(uid : int) ~(gen : int) ~(blk : int) (decode : unit -> decoded) : bool =
  let key = { k_uid = uid; k_gen = gen; k_blk = blk } in
  Mutex.lock lock;
  match Hashtbl.find_opt table key with
  | Some _ ->
    Mutex.unlock lock;
    false
  | None ->
    let l = { l_mutex = Mutex.create (); l_cond = Condition.create (); l_state = L_decoding } in
    Hashtbl.replace table key (Pending l);
    Mutex.unlock lock;
    (match decode () with
    | v ->
      Mutex.lock lock;
      (match Hashtbl.find_opt table key with
      | Some (Pending l') when l' == l ->
        let n = { nkey = key; value = v; prev = None; next = None; n_prefetched = true } in
        Hashtbl.replace table key (Resident n);
        resident_bytes := !resident_bytes + v.d_bytes;
        resident_blocks := !resident_blocks + 1;
        push_back n;
        evict_to_budget ~keep:None
      | _ -> ());
      Mutex.unlock lock;
      ignore (Atomic.fetch_and_add decoded_bytes v.d_bytes);
      Atomic.incr prefetch_fills;
      if Xquec_obs.is_enabled () then begin
        Xquec_obs.Metrics.incr "bufferpool.prefetch_fills";
        Xquec_obs.Metrics.incr ~by:v.d_bytes "bufferpool.decoded_bytes";
        Mutex.lock lock;
        publish_residency ();
        Mutex.unlock lock
      end;
      settle_latch l (L_done v);
      true
    | exception e ->
      Mutex.lock lock;
      (match Hashtbl.find_opt table key with
      | Some (Pending l') when l' == l -> Hashtbl.remove table key
      | _ -> ());
      Mutex.unlock lock;
      settle_latch l (L_failed e);
      false)

let note_skipped ?(bytes = 0) (n : int) : unit =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add blocks_skipped n);
    if bytes > 0 then ignore (Atomic.fetch_and_add skipped_bytes bytes);
    if Xquec_obs.is_enabled () then begin
      Xquec_obs.Metrics.incr ~by:n "container.blocks_skipped";
      if bytes > 0 then
        Xquec_obs.Metrics.incr ~by:bytes "container.payload_bytes_skipped"
    end
  end

let note_payload_decoded (bytes : int) : unit =
  if bytes > 0 then ignore (Atomic.fetch_and_add payload_bytes bytes)

let invalidate_container ~(uid : int) : int =
  Mutex.lock lock;
  let victims =
    Hashtbl.fold (fun k e acc -> if k.k_uid = uid then (k, e) :: acc else acc) table []
  in
  List.iter
    (fun (k, e) ->
      match e with
      | Resident n -> drop n
      | Pending _ ->
        (* The in-flight decoder's install check will see its latch is
           gone and skip caching; waiters still get the value. *)
        Hashtbl.remove table k)
    victims;
  publish_residency ();
  Mutex.unlock lock;
  let n = List.length victims in
  if n > 0 then begin
    ignore (Atomic.fetch_and_add invalidations n);
    if Xquec_obs.is_enabled () then
      Xquec_obs.Metrics.incr ~by:n "bufferpool.invalidations"
  end;
  n

let invalidate ~(uid : int) : unit = ignore (invalidate_container ~uid)

let clear () : unit =
  Mutex.lock lock;
  Hashtbl.reset table;
  lru_front := None;
  lru_back := None;
  resident_bytes := 0;
  resident_blocks := 0;
  publish_residency ();
  Mutex.unlock lock

let reset_stats () : unit =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set latch_waits 0;
  Atomic.set evictions 0;
  Atomic.set decoded_bytes 0;
  Atomic.set blocks_skipped 0;
  Atomic.set scan_inserts 0;
  Atomic.set invalidations 0;
  Atomic.set prefetch_fills 0;
  Atomic.set prefetch_hits 0;
  Atomic.set payload_bytes 0;
  Atomic.set skipped_bytes 0

(* --- uid allocation -------------------------------------------------- *)

let uid_counter = Atomic.make 0

let fresh_uid () : int = Atomic.fetch_and_add uid_counter 1 + 1
