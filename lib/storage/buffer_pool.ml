(* Process-wide buffer pool: an LRU cache of decoded container blocks
   with a byte budget, shared by every container in every open
   repository. Containers decode at most the blocks a predicate
   touches (demand paging); repeated access to the same blocks — warm
   joins, repeated queries — hits here instead of re-decoding.

   Single-threaded like the rest of the engine. Entries are keyed by
   (container uid, generation, block index): the uid is process-unique
   (two repositories never collide), and a container bumps its
   generation when it is recompressed so stale entries can never be
   returned; [invalidate] additionally drops them eagerly so they stop
   occupying budget.

   The pool keeps its own cumulative counters unconditionally (they are
   a handful of int adds) so EXPLAIN can attribute per-operator cache
   activity even when the global metrics switch is off; the same events
   are mirrored into [Xquec_obs.Metrics] under "bufferpool.*" when
   telemetry is enabled. *)

type key = { k_uid : int; k_gen : int; k_blk : int }

(** A decoded block: parallel arrays of still-compressed codes and
    parent ids, plus the byte charge this entry puts on the budget. *)
type decoded = { codes : string array; parents : int array; d_bytes : int }

(* intrusive doubly-linked LRU list; [lru_front] is most recent *)
type node = {
  nkey : key;
  value : decoded;
  mutable prev : node option;  (* towards the front (more recent) *)
  mutable next : node option;  (* towards the back (less recent) *)
}

let table : (key, node) Hashtbl.t = Hashtbl.create 1024

let lru_front : node option ref = ref None

let lru_back : node option ref = ref None

let default_budget_bytes = 64 * 1024 * 1024

let budget_ref = ref default_budget_bytes

(* cumulative, never reset by eviction *)
let hits = ref 0

let misses = ref 0

let evictions = ref 0

let decoded_bytes = ref 0

let blocks_skipped = ref 0

(* resident *)
let resident_bytes = ref 0

let resident_blocks = ref 0

type stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_decoded_bytes : int;
  s_blocks_skipped : int;
  s_resident_bytes : int;
  s_resident_blocks : int;
}

let snapshot () : stats =
  {
    s_hits = !hits;
    s_misses = !misses;
    s_evictions = !evictions;
    s_decoded_bytes = !decoded_bytes;
    s_blocks_skipped = !blocks_skipped;
    s_resident_bytes = !resident_bytes;
    s_resident_blocks = !resident_blocks;
  }

let budget_bytes () = !budget_ref

(* --- LRU list surgery ---------------------------------------------- *)

let unlink (n : node) : unit =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> lru_front := n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> lru_back := n.prev);
  n.prev <- None;
  n.next <- None

let push_front (n : node) : unit =
  n.next <- !lru_front;
  n.prev <- None;
  (match !lru_front with Some f -> f.prev <- Some n | None -> lru_back := Some n);
  lru_front := Some n

let touch (n : node) : unit =
  if !lru_front != Some n then begin
    unlink n;
    push_front n
  end

let publish_residency () =
  if Xquec_obs.is_enabled () then begin
    Xquec_obs.Metrics.set_gauge "bufferpool.resident_bytes" (float_of_int !resident_bytes);
    Xquec_obs.Metrics.set_gauge "bufferpool.resident_blocks" (float_of_int !resident_blocks)
  end

let drop (n : node) : unit =
  unlink n;
  Hashtbl.remove table n.nkey;
  resident_bytes := !resident_bytes - n.value.d_bytes;
  resident_blocks := !resident_blocks - 1

(* Evict from the back until within budget. The newest entry is never
   evicted, so a single block larger than the whole budget still works
   (it is simply the only resident block). *)
let rec evict_to_budget ~(keep : node) : unit =
  if !resident_bytes > !budget_ref then begin
    match !lru_back with
    | Some n when n != keep ->
      drop n;
      incr evictions;
      if Xquec_obs.is_enabled () then Xquec_obs.Metrics.incr "bufferpool.evictions";
      evict_to_budget ~keep
    | Some _ | None -> ()
  end

(* --- public API ----------------------------------------------------- *)

let set_budget ~(bytes : int) : unit =
  budget_ref := max 0 bytes;
  (* shrink immediately; keep at least the most recent entry *)
  match !lru_front with Some keep -> evict_to_budget ~keep | None -> ()

let fetch ~(uid : int) ~(gen : int) ~(blk : int) ~(decode : unit -> decoded) : decoded =
  let key = { k_uid = uid; k_gen = gen; k_blk = blk } in
  match Hashtbl.find_opt table key with
  | Some n ->
    incr hits;
    if Xquec_obs.is_enabled () then Xquec_obs.Metrics.incr "bufferpool.hits";
    touch n;
    n.value
  | None ->
    incr misses;
    let v = decode () in
    decoded_bytes := !decoded_bytes + v.d_bytes;
    if Xquec_obs.is_enabled () then begin
      Xquec_obs.Metrics.incr "bufferpool.misses";
      Xquec_obs.Metrics.incr ~by:v.d_bytes "bufferpool.decoded_bytes"
    end;
    let n = { nkey = key; value = v; prev = None; next = None } in
    Hashtbl.replace table key n;
    push_front n;
    resident_bytes := !resident_bytes + v.d_bytes;
    resident_blocks := !resident_blocks + 1;
    evict_to_budget ~keep:n;
    publish_residency ();
    v

let note_skipped (n : int) : unit =
  if n > 0 then begin
    blocks_skipped := !blocks_skipped + n;
    if Xquec_obs.is_enabled () then Xquec_obs.Metrics.incr ~by:n "container.blocks_skipped"
  end

let invalidate ~(uid : int) : unit =
  let victims =
    Hashtbl.fold (fun k n acc -> if k.k_uid = uid then n :: acc else acc) table []
  in
  List.iter drop victims;
  publish_residency ()

let clear () : unit =
  Hashtbl.reset table;
  lru_front := None;
  lru_back := None;
  resident_bytes := 0;
  resident_blocks := 0;
  publish_residency ()

let reset_stats () : unit =
  hits := 0;
  misses := 0;
  evictions := 0;
  decoded_bytes := 0;
  blocks_skipped := 0

(* --- uid allocation -------------------------------------------------- *)

let uid_counter = ref 0

let fresh_uid () : int =
  incr uid_counter;
  !uid_counter
