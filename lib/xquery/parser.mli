(** Recursive-descent parser for the XQuery subset of {!Ast}; operates
    on the character stream so direct element constructors parse without
    lexer modes. *)

exception Syntax_error of string * int  (** message, byte offset *)

(** [parse src] parses one complete query expression; trailing
    non-whitespace input or any syntax error raises {!Syntax_error}
    with the byte offset of the offending character. *)
val parse : string -> Ast.expr
